//! Semantic validation: symbol resolution, arity, rank, and light type
//! checking. Collects every error it finds rather than failing fast, so the
//! semi-automatic driver can show users a complete report.

use crate::ast::*;
use crate::error::{Errors, FirError};
use crate::intrinsics::{
    check_builtin_sub_arity, check_intrinsic_arity, is_builtin_sub, is_predefined_scalar,
};
use crate::symbol::{ProcSymbols, Symbol};
use std::collections::{HashMap, HashSet};

/// Validate a whole program. `Ok(())` means the interpreter and the
/// transformation can assume well-formed input.
pub fn validate(program: &Program) -> Result<(), Errors> {
    let mut errs = Vec::new();

    // Duplicate procedure names.
    let mut seen = HashSet::new();
    for p in program.all_procedures() {
        if !seen.insert(p.name.as_str()) {
            errs.push(FirError::validate(
                p.span,
                format!("duplicate procedure name `{}`", p.name),
            ));
        }
        if is_builtin_sub(&p.name) {
            errs.push(FirError::validate(
                p.span,
                format!("procedure `{}` shadows a builtin subroutine", p.name),
            ));
        }
    }

    for p in program.all_procedures() {
        validate_procedure(program, p, &mut errs);
    }

    check_recursion(program, &mut errs);

    if errs.is_empty() {
        Ok(())
    } else {
        Err(Errors(errs))
    }
}

fn validate_procedure(program: &Program, proc: &Procedure, errs: &mut Vec<FirError>) {
    // Declarations: duplicates, reserved names, param coverage.
    let mut decl_names = HashSet::new();
    for d in &proc.decls {
        if !decl_names.insert(d.name.as_str()) {
            errs.push(FirError::validate(
                d.span,
                format!("duplicate declaration of `{}`", d.name),
            ));
        }
        if is_predefined_scalar(&d.name) {
            errs.push(FirError::validate(
                d.span,
                format!("`{}` is predefined and cannot be redeclared", d.name),
            ));
        }
    }
    for param in &proc.params {
        if !decl_names.contains(param.name.as_str()) {
            errs.push(FirError::validate(
                param.span,
                format!(
                    "parameter `{}` of `{}` has no declaration",
                    param.name, proc.name
                ),
            ));
        }
    }

    let syms = ProcSymbols::new(proc);

    // Dimension bound expressions must be integer scalars.
    for d in &proc.decls {
        for b in &d.dims {
            for e in [&b.lower, &b.upper] {
                check_int_expr(&syms, e, "array bound", errs);
            }
        }
    }

    let mut cx = StmtCx {
        program,
        proc,
        syms: &syms,
        loop_vars: Vec::new(),
        errs,
    };
    cx.check_stmts(&proc.body);
}

struct StmtCx<'a, 'p> {
    program: &'p Program,
    proc: &'p Procedure,
    syms: &'a ProcSymbols<'p>,
    loop_vars: Vec<String>,
    errs: &'a mut Vec<FirError>,
}

impl StmtCx<'_, '_> {
    fn check_stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.check_stmt(s);
        }
    }

    fn check_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign { target, value, .. } => {
                self.check_lvalue(target);
                self.check_expr_typed(value);
            }
            Stmt::Do {
                var,
                lower,
                upper,
                step,
                body,
                span,
            } => {
                if is_predefined_scalar(var) {
                    self.errs.push(FirError::validate(
                        *span,
                        format!("loop variable `{var}` is read-only"),
                    ));
                }
                match self.syms.resolve(var) {
                    Symbol::Array(_) => self.errs.push(FirError::validate(
                        *span,
                        format!("loop variable `{var}` is declared as an array"),
                    )),
                    sym if sym.scalar_type() != ScalarType::Integer => {
                        self.errs.push(FirError::validate(
                            *span,
                            format!("loop variable `{var}` must be an integer"),
                        ))
                    }
                    _ => {}
                }
                check_int_expr(self.syms, lower, "loop lower bound", self.errs);
                check_int_expr(self.syms, upper, "loop upper bound", self.errs);
                if let Some(st) = step {
                    check_int_expr(self.syms, st, "loop step", self.errs);
                    if st.is_int(0) {
                        self.errs.push(FirError::validate(
                            st.span(),
                            "loop step must not be zero".to_string(),
                        ));
                    }
                }
                self.loop_vars.push(var.clone());
                self.check_stmts(body);
                self.loop_vars.pop();
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                match infer_type(self.syms, cond) {
                    Ok(ScalarType::Integer) => {}
                    Ok(ScalarType::Real) => self.errs.push(FirError::validate(
                        cond.span(),
                        "if condition must be integer-valued (logical)".to_string(),
                    )),
                    Err(e) => self.errs.push(e),
                }
                self.check_stmts(then_body);
                self.check_stmts(else_body);
            }
            Stmt::Call { name, args, span } => self.check_call(name, args, *span),
        }
    }

    fn check_lvalue(&mut self, lv: &LValue) {
        if is_predefined_scalar(&lv.name) {
            self.errs.push(FirError::validate(
                lv.span,
                format!("cannot assign to predefined `{}`", lv.name),
            ));
            return;
        }
        if self.loop_vars.contains(&lv.name) && lv.indices.is_empty() {
            self.errs.push(FirError::validate(
                lv.span,
                format!("cannot assign to active loop variable `{}`", lv.name),
            ));
        }
        match self.syms.resolve(&lv.name) {
            Symbol::Array(d) => {
                if lv.indices.len() != d.rank() {
                    self.errs.push(FirError::validate(
                        lv.span,
                        format!(
                            "array `{}` has rank {}, subscripted with {} index(es)",
                            lv.name,
                            d.rank(),
                            lv.indices.len()
                        ),
                    ));
                }
                for ix in &lv.indices {
                    check_int_expr(self.syms, ix, "array subscript", self.errs);
                }
            }
            _ => {
                if !lv.indices.is_empty() {
                    self.errs.push(FirError::validate(
                        lv.span,
                        format!("`{}` is not an array but is subscripted", lv.name),
                    ));
                }
            }
        }
    }

    fn check_expr_typed(&mut self, e: &Expr) {
        if let Err(err) = infer_type(self.syms, e) {
            self.errs.push(err);
        }
    }

    fn check_call(&mut self, name: &str, args: &[Arg], span: crate::span::Span) {
        // Argument well-formedness first (sections must name arrays, etc).
        for a in args {
            match a {
                Arg::Expr(e) => {
                    // A bare variable naming an array is a by-reference pass;
                    // anything else must type-check as a scalar expression.
                    if let Expr::Var(n, _) = e {
                        if self.syms.is_array(n) {
                            continue;
                        }
                    }
                    self.check_expr_typed(e);
                }
                Arg::Section(sec) => {
                    match self.syms.resolve(&sec.name) {
                        Symbol::Array(d) => {
                            if sec.dims.len() != d.rank() {
                                self.errs.push(FirError::validate(
                                    sec.span,
                                    format!(
                                        "section of `{}` has {} dim(s), array has rank {}",
                                        sec.name,
                                        sec.dims.len(),
                                        d.rank()
                                    ),
                                ));
                            }
                        }
                        _ => self.errs.push(FirError::validate(
                            sec.span,
                            format!("section base `{}` is not a declared array", sec.name),
                        )),
                    }
                    for d in &sec.dims {
                        match d {
                            SecDim::Index(e) => {
                                check_int_expr(self.syms, e, "section index", self.errs)
                            }
                            SecDim::Range(lo, hi) => {
                                for e in [lo, hi].into_iter().flatten() {
                                    check_int_expr(
                                        self.syms,
                                        e,
                                        "section bound",
                                        self.errs,
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }

        if let Some(res) = check_builtin_sub_arity(name, args.len()) {
            if let Err(msg) = res {
                self.errs.push(FirError::validate(span, msg));
            }
            self.check_mpi_buffer_args(name, args, span);
            return;
        }

        match self.program.procedure(name) {
            Some(callee) => {
                if callee.params.len() != args.len() {
                    self.errs.push(FirError::validate(
                        span,
                        format!(
                            "`{}` expects {} argument(s), got {}",
                            name,
                            callee.params.len(),
                            args.len()
                        ),
                    ));
                }
            }
            None => {
                if self.proc.name == name || self.program.main.name == name {
                    self.errs.push(FirError::validate(
                        span,
                        format!("cannot call program unit `{name}`"),
                    ));
                } else {
                    self.errs.push(FirError::validate(
                        span,
                        format!("call to unknown subroutine `{name}`"),
                    ));
                }
            }
        }
    }

    /// MPI builtins: buffer arguments must be arrays (bare name or section).
    fn check_mpi_buffer_args(&mut self, name: &str, args: &[Arg], span: crate::span::Span) {
        let buffer_positions: &[usize] = match name {
            "mpi_alltoall" => &[0, 2],
            "mpi_isend" | "mpi_irecv" => &[0],
            _ => &[],
        };
        for &i in buffer_positions {
            let Some(a) = args.get(i) else { continue };
            let ok = match a {
                Arg::Section(_) => true,
                Arg::Expr(Expr::Var(n, _)) => self.syms.is_array(n),
                _ => false,
            };
            if !ok {
                self.errs.push(FirError::validate(
                    a.span().merge(span),
                    format!(
                        "argument {} of `{name}` must be an array or array section",
                        i + 1
                    ),
                ));
            }
        }
    }
}

fn check_int_expr(
    syms: &ProcSymbols<'_>,
    e: &Expr,
    what: &str,
    errs: &mut Vec<FirError>,
) {
    match infer_type(syms, e) {
        Ok(ScalarType::Integer) => {}
        Ok(ScalarType::Real) => errs.push(FirError::validate(
            e.span(),
            format!("{what} must be an integer expression"),
        )),
        Err(err) => errs.push(err),
    }
}

/// Light type inference. Integer/Real only; comparisons and logical
/// operators yield Integer (0/1). Errors on arrays used as scalars, unknown
/// intrinsics, wrong intrinsic arity, and `mod` on reals.
pub fn infer_type(syms: &ProcSymbols<'_>, e: &Expr) -> Result<ScalarType, FirError> {
    match e {
        Expr::IntLit(..) => Ok(ScalarType::Integer),
        Expr::RealLit(..) => Ok(ScalarType::Real),
        Expr::Var(n, span) => match syms.resolve(n) {
            Symbol::Array(_) => Err(FirError::validate(
                *span,
                format!("array `{n}` used as a scalar value"),
            )),
            sym => Ok(sym.scalar_type()),
        },
        Expr::ArrayRef {
            name,
            indices,
            span,
        } => match syms.resolve(name) {
            Symbol::Array(d) => {
                if indices.len() != d.rank() {
                    return Err(FirError::validate(
                        *span,
                        format!(
                            "array `{}` has rank {}, subscripted with {} index(es)",
                            name,
                            d.rank(),
                            indices.len()
                        ),
                    ));
                }
                for ix in indices {
                    let t = infer_type(syms, ix)?;
                    if t != ScalarType::Integer {
                        return Err(FirError::validate(
                            ix.span(),
                            "array subscript must be an integer expression".to_string(),
                        ));
                    }
                }
                Ok(d.ty)
            }
            _ => Err(FirError::validate(
                *span,
                format!("`{name}` is not a declared array"),
            )),
        },
        Expr::Call { name, args, span } => {
            match check_intrinsic_arity(name, args.len()) {
                Some(Ok(())) => {}
                Some(Err(msg)) => return Err(FirError::validate(*span, msg)),
                None => {
                    return Err(FirError::validate(
                        *span,
                        format!("unknown intrinsic function `{name}`"),
                    ))
                }
            }
            let mut arg_tys = Vec::with_capacity(args.len());
            for a in args {
                arg_tys.push(infer_type(syms, a)?);
            }
            match name.as_str() {
                "mod" | "floor" | "int" => {
                    if name == "mod"
                        && arg_tys.iter().any(|t| *t != ScalarType::Integer)
                    {
                        return Err(FirError::validate(
                            *span,
                            "`mod` requires integer arguments".to_string(),
                        ));
                    }
                    Ok(ScalarType::Integer)
                }
                "sqrt" | "sin" | "cos" | "exp" | "log" | "real" => Ok(ScalarType::Real),
                "abs" => Ok(arg_tys[0]),
                "min" | "max" => Ok(if arg_tys.contains(&ScalarType::Real) {
                    ScalarType::Real
                } else {
                    ScalarType::Integer
                }),
                _ => unreachable!("arity table covers all intrinsics"),
            }
        }
        Expr::Unary { op, operand, .. } => {
            let t = infer_type(syms, operand)?;
            Ok(match op {
                UnOp::Neg => t,
                UnOp::Not => ScalarType::Integer,
            })
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let lt = infer_type(syms, lhs)?;
            let rt = infer_type(syms, rhs)?;
            if op.is_comparison() || matches!(op, BinOp::And | BinOp::Or) {
                Ok(ScalarType::Integer)
            } else if lt == ScalarType::Real || rt == ScalarType::Real {
                Ok(ScalarType::Real)
            } else {
                Ok(ScalarType::Integer)
            }
        }
    }
}

/// Reject recursive call chains: the interpreter (like Fortran 77) does not
/// support recursion, and the transformation's procedure-mutation analysis
/// assumes an acyclic call graph.
fn check_recursion(program: &Program, errs: &mut Vec<FirError>) {
    let mut graph: HashMap<&str, Vec<&str>> = HashMap::new();
    for p in program.all_procedures() {
        let calls = crate::visit::collect_stmts(&p.body, &|s| {
            matches!(s, Stmt::Call { name, .. } if program.procedure(name).is_some())
        });
        let targets = calls
            .into_iter()
            .map(|s| match s {
                Stmt::Call { name, .. } => name.as_str(),
                _ => unreachable!(),
            })
            .collect();
        graph.insert(p.name.as_str(), targets);
    }

    fn dfs<'g>(
        node: &'g str,
        graph: &HashMap<&'g str, Vec<&'g str>>,
        visiting: &mut Vec<&'g str>,
        done: &mut HashSet<&'g str>,
    ) -> Option<Vec<String>> {
        if done.contains(node) {
            return None;
        }
        if let Some(pos) = visiting.iter().position(|n| *n == node) {
            let mut cycle: Vec<String> =
                visiting[pos..].iter().map(|s| s.to_string()).collect();
            cycle.push(node.to_string());
            return Some(cycle);
        }
        visiting.push(node);
        if let Some(next) = graph.get(node) {
            for n in next {
                if let Some(c) = dfs(n, graph, visiting, done) {
                    return Some(c);
                }
            }
        }
        visiting.pop();
        done.insert(node);
        None
    }

    let mut done = HashSet::new();
    for p in program.all_procedures() {
        let mut visiting = Vec::new();
        if let Some(cycle) = dfs(p.name.as_str(), &graph, &mut visiting, &mut done) {
            errs.push(FirError::validate(
                p.span,
                format!("recursive call chain: {}", cycle.join(" -> ")),
            ));
            return; // one report is enough
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check(src: &str) -> Result<(), Errors> {
        validate(&parse(src).unwrap())
    }

    fn assert_error_contains(src: &str, needle: &str) {
        let errs = check(src).expect_err("expected validation failure");
        assert!(
            errs.0.iter().any(|e| e.message.contains(needle)),
            "no error containing {needle:?} in {:?}",
            errs.0
        );
    }

    #[test]
    fn valid_program_passes() {
        check(
            "program m\n  integer :: n\n  real :: as(8), ar(8)\n  n = 8\n  do iy = 1, n\n    as(iy) = iy * 1.5\n  end do\n  call mpi_alltoall(as, 2, ar)\nend program",
        )
        .unwrap();
    }

    #[test]
    fn duplicate_decl_rejected() {
        assert_error_contains(
            "program m\n  integer :: n\n  real :: n\nend program",
            "duplicate declaration",
        );
    }

    #[test]
    fn redeclare_predefined_rejected() {
        assert_error_contains(
            "program m\n  integer :: mynum\nend program",
            "predefined",
        );
    }

    #[test]
    fn assign_to_predefined_rejected() {
        assert_error_contains("program m\n  np = 3\nend program", "cannot assign");
    }

    #[test]
    fn assign_to_loop_var_rejected() {
        assert_error_contains(
            "program m\n  do i = 1, 3\n    i = 5\n  end do\nend program",
            "active loop variable",
        );
    }

    #[test]
    fn rank_mismatch_rejected() {
        assert_error_contains(
            "program m\n  real :: a(2, 2)\n  a(1) = 0\nend program",
            "rank 2",
        );
    }

    #[test]
    fn subscripted_scalar_rejected() {
        assert_error_contains(
            "program m\n  integer :: n\n  n(1) = 0\nend program",
            "not an array",
        );
    }

    #[test]
    fn real_loop_var_rejected() {
        assert_error_contains(
            "program m\n  do x = 1, 3\n  end do\nend program",
            "must be an integer",
        );
    }

    #[test]
    fn real_subscript_rejected() {
        assert_error_contains(
            "program m\n  real :: a(4)\n  a(1.5) = 0\nend program",
            "subscript must be an integer",
        );
    }

    #[test]
    fn unknown_subroutine_rejected() {
        assert_error_contains("program m\n  call nosuch(1)\nend program", "unknown");
    }

    #[test]
    fn wrong_user_arity_rejected() {
        assert_error_contains(
            "subroutine s(a)\n  integer :: a\nend subroutine\nprogram m\n  call s(1, 2)\nend program",
            "expects 1 argument",
        );
    }

    #[test]
    fn undeclared_param_rejected() {
        assert_error_contains(
            "subroutine s(a)\nend subroutine\nprogram m\n  call s(1)\nend program",
            "no declaration",
        );
    }

    #[test]
    fn mpi_buffer_must_be_array() {
        assert_error_contains(
            "program m\n  real :: ar(4)\n  integer :: x\n  call mpi_alltoall(x, 1, ar)\nend program",
            "must be an array",
        );
    }

    #[test]
    fn mpi_arity_checked() {
        assert_error_contains(
            "program m\n  real :: a(4), b(4)\n  call mpi_isend(a, 1, 0)\nend program",
            "needs 4 argument",
        );
    }

    #[test]
    fn recursion_rejected() {
        assert_error_contains(
            "subroutine a()\n  call b()\nend subroutine\nsubroutine b()\n  call a()\nend subroutine\nprogram m\n  call a()\nend program",
            "recursive call chain",
        );
    }

    #[test]
    fn self_recursion_rejected() {
        assert_error_contains(
            "subroutine a()\n  call a()\nend subroutine\nprogram m\n  call a()\nend program",
            "recursive",
        );
    }

    #[test]
    fn mod_on_reals_rejected() {
        assert_error_contains(
            "program m\n  x = mod(1.5, 2.0)\nend program",
            "integer arguments",
        );
    }

    #[test]
    fn real_condition_rejected() {
        assert_error_contains(
            "program m\n  if (1.5) then\n  end if\nend program",
            "must be integer-valued",
        );
    }

    #[test]
    fn shadowing_builtin_rejected() {
        assert_error_contains(
            "subroutine print(x)\n  integer :: x\nend subroutine\nprogram m\nend program",
            "shadows a builtin",
        );
    }

    #[test]
    fn section_of_scalar_rejected() {
        assert_error_contains(
            "program m\n  integer :: x\n  real :: r(4)\n  call mpi_isend(x(1:2), 2, 0, 0)\nend program",
            "not a declared array",
        );
    }

    #[test]
    fn implicit_integers_accepted_in_bounds() {
        check(
            "program m\n  real :: a(8)\n  do i = 1, 8\n    a(i) = 0\n  end do\nend program",
        )
        .unwrap();
    }

    #[test]
    fn multiple_errors_collected() {
        let errs = check("program m\n  np = 1\n  mynum = 2\nend program").unwrap_err();
        assert!(errs.0.len() >= 2);
    }
}
