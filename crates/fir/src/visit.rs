//! Read-only visitors and in-place mutators over the AST.
//!
//! The Compuniformer's analyses walk statements and expressions constantly;
//! these traits centralize the recursion so each analysis only overrides the
//! hooks it cares about.

use crate::ast::*;

/// Read-only visitor. Default methods perform a full pre-order walk; override
/// a hook and call the corresponding `walk_*` to keep descending.
pub trait Visitor {
    fn visit_stmt(&mut self, s: &Stmt) {
        walk_stmt(self, s);
    }
    fn visit_expr(&mut self, e: &Expr) {
        walk_expr(self, e);
    }
    fn visit_lvalue(&mut self, lv: &LValue) {
        walk_lvalue(self, lv);
    }
    fn visit_arg(&mut self, a: &Arg) {
        walk_arg(self, a);
    }
}

pub fn walk_stmts<V: Visitor + ?Sized>(v: &mut V, stmts: &[Stmt]) {
    for s in stmts {
        v.visit_stmt(s);
    }
}

pub fn walk_stmt<V: Visitor + ?Sized>(v: &mut V, s: &Stmt) {
    match s {
        Stmt::Assign { target, value, .. } => {
            v.visit_lvalue(target);
            v.visit_expr(value);
        }
        Stmt::Do {
            lower,
            upper,
            step,
            body,
            ..
        } => {
            v.visit_expr(lower);
            v.visit_expr(upper);
            if let Some(st) = step {
                v.visit_expr(st);
            }
            walk_stmts(v, body);
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            v.visit_expr(cond);
            walk_stmts(v, then_body);
            walk_stmts(v, else_body);
        }
        Stmt::Call { args, .. } => {
            for a in args {
                v.visit_arg(a);
            }
        }
    }
}

pub fn walk_lvalue<V: Visitor + ?Sized>(v: &mut V, lv: &LValue) {
    for ix in &lv.indices {
        v.visit_expr(ix);
    }
}

pub fn walk_arg<V: Visitor + ?Sized>(v: &mut V, a: &Arg) {
    match a {
        Arg::Expr(e) => v.visit_expr(e),
        Arg::Section(sec) => {
            for d in &sec.dims {
                match d {
                    SecDim::Index(e) => v.visit_expr(e),
                    SecDim::Range(lo, hi) => {
                        if let Some(lo) = lo {
                            v.visit_expr(lo);
                        }
                        if let Some(hi) = hi {
                            v.visit_expr(hi);
                        }
                    }
                }
            }
        }
    }
}

pub fn walk_expr<V: Visitor + ?Sized>(v: &mut V, e: &Expr) {
    match e {
        Expr::IntLit(..) | Expr::RealLit(..) | Expr::Var(..) => {}
        Expr::ArrayRef { indices, .. } => {
            for i in indices {
                v.visit_expr(i);
            }
        }
        Expr::Call { args, .. } => {
            for a in args {
                v.visit_expr(a);
            }
        }
        Expr::Unary { operand, .. } => v.visit_expr(operand),
        Expr::Binary { lhs, rhs, .. } => {
            v.visit_expr(lhs);
            v.visit_expr(rhs);
        }
    }
}

/// In-place mutator. Hooks receive `&mut`; defaults do a full walk.
pub trait Mutator {
    fn mutate_stmt(&mut self, s: &mut Stmt) {
        walk_stmt_mut(self, s);
    }
    fn mutate_expr(&mut self, e: &mut Expr) {
        walk_expr_mut(self, e);
    }
}

pub fn walk_stmts_mut<M: Mutator + ?Sized>(m: &mut M, stmts: &mut [Stmt]) {
    for s in stmts {
        m.mutate_stmt(s);
    }
}

pub fn walk_stmt_mut<M: Mutator + ?Sized>(m: &mut M, s: &mut Stmt) {
    match s {
        Stmt::Assign { target, value, .. } => {
            for ix in &mut target.indices {
                m.mutate_expr(ix);
            }
            m.mutate_expr(value);
        }
        Stmt::Do {
            lower,
            upper,
            step,
            body,
            ..
        } => {
            m.mutate_expr(lower);
            m.mutate_expr(upper);
            if let Some(st) = step {
                m.mutate_expr(st);
            }
            walk_stmts_mut(m, body);
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            m.mutate_expr(cond);
            walk_stmts_mut(m, then_body);
            walk_stmts_mut(m, else_body);
        }
        Stmt::Call { args, .. } => {
            for a in args {
                match a {
                    Arg::Expr(e) => m.mutate_expr(e),
                    Arg::Section(sec) => {
                        for d in &mut sec.dims {
                            match d {
                                SecDim::Index(e) => m.mutate_expr(e),
                                SecDim::Range(lo, hi) => {
                                    if let Some(lo) = lo {
                                        m.mutate_expr(lo);
                                    }
                                    if let Some(hi) = hi {
                                        m.mutate_expr(hi);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

pub fn walk_expr_mut<M: Mutator + ?Sized>(m: &mut M, e: &mut Expr) {
    match e {
        Expr::IntLit(..) | Expr::RealLit(..) | Expr::Var(..) => {}
        Expr::ArrayRef { indices, .. } => {
            for i in indices {
                m.mutate_expr(i);
            }
        }
        Expr::Call { args, .. } => {
            for a in args {
                m.mutate_expr(a);
            }
        }
        Expr::Unary { operand, .. } => m.mutate_expr(operand),
        Expr::Binary { lhs, rhs, .. } => {
            m.mutate_expr(lhs);
            m.mutate_expr(rhs);
        }
    }
}

/// Substitute every read of scalar variable `var` with `replacement`.
/// Loop variables shadow nothing in this language (single flat scope per
/// procedure), so the substitution is purely syntactic.
pub struct SubstVar<'a> {
    pub var: &'a str,
    pub replacement: &'a Expr,
}

impl Mutator for SubstVar<'_> {
    fn mutate_expr(&mut self, e: &mut Expr) {
        if let Expr::Var(n, _) = e {
            if n == self.var {
                *e = self.replacement.clone();
                return;
            }
        }
        walk_expr_mut(self, e);
    }
}

/// Collect every statement matching a predicate, with pre-order indices.
pub fn collect_stmts<'a>(
    stmts: &'a [Stmt],
    pred: &dyn Fn(&Stmt) -> bool,
) -> Vec<&'a Stmt> {
    struct C<'a, 'p> {
        out: Vec<&'a Stmt>,
        pred: &'p dyn Fn(&Stmt) -> bool,
    }
    // A custom recursion (not Visitor) because we need the 'a lifetime on
    // collected references.
    fn go<'a>(c: &mut C<'a, '_>, stmts: &'a [Stmt]) {
        for s in stmts {
            if (c.pred)(s) {
                c.out.push(s);
            }
            match s {
                Stmt::Do { body, .. } => go(c, body),
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    go(c, then_body);
                    go(c, else_body);
                }
                _ => {}
            }
        }
    }
    let mut c = C { out: Vec::new(), pred };
    go(&mut c, stmts);
    c.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_stmts};
    use crate::unparse::{unparse_expr, unparse_stmts};

    #[test]
    fn visitor_counts_array_refs() {
        struct Count(usize);
        impl Visitor for Count {
            fn visit_expr(&mut self, e: &Expr) {
                if matches!(e, Expr::ArrayRef { .. }) {
                    self.0 += 1;
                }
                walk_expr(self, e);
            }
        }
        let stmts =
            parse_stmts("do i = 1, n\n  a(i) = b(i) + b(i + 1)\nend do").unwrap();
        let mut c = Count(0);
        walk_stmts(&mut c, &stmts);
        // The LValue `a(i)` is not an Expr::ArrayRef; only the two reads of
        // `b` count.
        assert_eq!(c.0, 2);
    }

    #[test]
    fn visitor_descends_into_sections() {
        struct Vars(Vec<String>);
        impl Visitor for Vars {
            fn visit_expr(&mut self, e: &Expr) {
                if let Expr::Var(n, _) = e {
                    self.0.push(n.clone());
                }
                walk_expr(self, e);
            }
        }
        let stmts = parse_stmts("call mpi_isend(as(lo:hi), k, to, 7)").unwrap();
        let mut v = Vars(Vec::new());
        walk_stmts(&mut v, &stmts);
        assert_eq!(v.0, vec!["lo", "hi", "k", "to"]);
    }

    #[test]
    fn subst_var_replaces_reads_everywhere() {
        let mut stmts = parse_stmts("a(i) = i + j * i").unwrap();
        let repl = parse_expr("i0 + 5").unwrap();
        let mut m = SubstVar {
            var: "i",
            replacement: &repl,
        };
        walk_stmts_mut(&mut m, &mut stmts);
        // The LValue *index* is rewritten but the array name is not.
        assert_eq!(
            unparse_stmts(&stmts).trim(),
            "a(i0 + 5) = i0 + 5 + j * (i0 + 5)"
        );
    }

    #[test]
    fn subst_leaves_other_vars() {
        let mut e = parse_expr("x + y").unwrap();
        let repl = parse_expr("1").unwrap();
        let mut m = SubstVar {
            var: "z",
            replacement: &repl,
        };
        m.mutate_expr(&mut e);
        assert_eq!(unparse_expr(&e), "x + y");
    }

    #[test]
    fn collect_stmts_finds_nested_calls() {
        let src = "do i = 1, n\n  if (i > 0) then\n    call p(i)\n  end if\nend do\ncall q()";
        let stmts = parse_stmts(src).unwrap();
        let calls = collect_stmts(&stmts, &|s| matches!(s, Stmt::Call { .. }));
        assert_eq!(calls.len(), 2);
    }
}
