//! Robustness: the lexer/parser/validator must never panic — any input,
//! however mangled, yields `Err`, not a crash. Random strings plus
//! mutations of valid programs.

use proptest::prelude::*;

const SEED_PROGRAM: &str = "\
program main
  real :: as(64), ar(64)
  do iy = 1, 64
    do ix = 1, 64
      as(ix) = ix * iy + sin(0.5)
    end do
    call mpi_alltoall(as, 16, ar)
  end do
end program";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_strings_never_panic(s in "\\PC*") {
        let _ = fir::parse_validated(&s);
    }

    #[test]
    fn ascii_soup_never_panics(s in "[ -~\\n]{0,200}") {
        let _ = fir::parse_validated(&s);
    }

    #[test]
    fn mutated_valid_program_never_panics(
        pos in 0usize..SEED_PROGRAM.len(),
        len in 0usize..20,
        insert in "[ -~]{0,10}",
    ) {
        let mut s = SEED_PROGRAM.to_string();
        let start = pos.min(s.len());
        let end = (pos + len).min(s.len());
        // Only mutate at char boundaries (the seed is ASCII, so fine).
        s.replace_range(start..end, &insert);
        let _ = fir::parse_validated(&s);
    }

    #[test]
    fn token_shuffles_never_panic(parts in prop::collection::vec(
        prop::sample::select(vec![
            "do", "end", "if", "then", "else", "program", "subroutine",
            "call", "integer", "real", "::", "(", ")", ",", "=", "+",
            "-", "*", "/", "**", "==", "<", ":", "a", "ix", "1", "2.5",
            ".and.", ".not.", "\n",
        ]),
        0..40,
    )) {
        let s = parts.join(" ");
        let _ = fir::parse_validated(&s);
    }
}
