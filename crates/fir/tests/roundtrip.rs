//! Property test: `parse(unparse(ast)) == ast` for randomly generated ASTs,
//! and `parse(unparse(parse(src))) == parse(src)` for generated source.
//!
//! Generator constraints (documented invariants of the unparser):
//! - integer literals are non-negative (negative values only arise from the
//!   builder's constant folding and print parenthesized, reparsing as Neg);
//! - real literals are positive and finite;
//! - names avoid keywords, intrinsics, and builtin subroutines.

use fir::ast::*;
use fir::span::Span;
use fir::{parse, parse_expr, parse_stmts, unparse, unparse_expr, unparse_stmts};
use proptest::prelude::*;

const SCALAR_NAMES: &[&str] = &["i", "j", "k", "n", "ix", "iy", "lo", "hi", "x2", "alpha"];
const ARRAY_NAMES: &[&str] = &["as", "ar", "at", "buf", "w"];

fn scalar_name() -> impl Strategy<Value = String> {
    prop::sample::select(SCALAR_NAMES).prop_map(str::to_string)
}

fn array_name() -> impl Strategy<Value = String> {
    prop::sample::select(ARRAY_NAMES).prop_map(str::to_string)
}

fn leaf_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0i64..1000).prop_map(|v| Expr::IntLit(v, Span::DUMMY)),
        (1u32..10000u32).prop_map(|v| Expr::RealLit(v as f64 / 8.0, Span::DUMMY)),
        scalar_name().prop_map(|n| Expr::Var(n, Span::DUMMY)),
    ]
}

fn expr() -> impl Strategy<Value = Expr> {
    leaf_expr().prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            // array ref, rank 1-3
            (array_name(), prop::collection::vec(inner.clone(), 1..4)).prop_map(
                |(name, indices)| Expr::ArrayRef {
                    name,
                    indices,
                    span: Span::DUMMY,
                }
            ),
            // intrinsic calls with matching arity
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Call {
                name: "mod".into(),
                args: vec![a, b],
                span: Span::DUMMY,
            }),
            inner.clone().prop_map(|a| Expr::Call {
                name: "abs".into(),
                args: vec![a],
                span: Span::DUMMY,
            }),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(a, b, c)| {
                Expr::Call {
                    name: "max".into(),
                    args: vec![a, b, c],
                    span: Span::DUMMY,
                }
            }),
            // unary
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnOp::Neg,
                operand: Box::new(e),
                span: Span::DUMMY,
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnOp::Not,
                operand: Box::new(e),
                span: Span::DUMMY,
            }),
            // binary, all operators
            (
                prop::sample::select(vec![
                    BinOp::Or,
                    BinOp::And,
                    BinOp::Eq,
                    BinOp::Ne,
                    BinOp::Lt,
                    BinOp::Le,
                    BinOp::Gt,
                    BinOp::Ge,
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Pow,
                ]),
                inner.clone(),
                inner
            )
                .prop_map(|(op, lhs, rhs)| Expr::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    span: Span::DUMMY,
                }),
        ]
    })
}

fn lvalue() -> impl Strategy<Value = LValue> {
    prop_oneof![
        scalar_name().prop_map(|name| LValue {
            name,
            indices: Vec::new(),
            span: Span::DUMMY,
        }),
        (array_name(), prop::collection::vec(expr(), 1..3)).prop_map(|(name, indices)| {
            LValue {
                name,
                indices,
                span: Span::DUMMY,
            }
        }),
    ]
}

fn sec_dim() -> impl Strategy<Value = SecDim> {
    prop_oneof![
        expr().prop_map(SecDim::Index),
        (expr(), expr()).prop_map(|(a, b)| SecDim::Range(Some(a), Some(b))),
        expr().prop_map(|a| SecDim::Range(Some(a), None)),
        expr().prop_map(|b| SecDim::Range(None, Some(b))),
        Just(SecDim::Range(None, None)),
    ]
}

fn call_arg() -> impl Strategy<Value = Arg> {
    prop_oneof![
        expr().prop_map(Arg::Expr),
        (array_name(), prop::collection::vec(sec_dim(), 1..3)).prop_map(|(name, dims)| {
            // A section with no range dim would reparse as a plain
            // expression (ArrayRef); force at least one range.
            let mut dims = dims;
            if !dims
                .iter()
                .any(|d| matches!(d, SecDim::Range(..)))
            {
                dims[0] = SecDim::Range(None, None);
            }
            Arg::Section(Section {
                name,
                dims,
                span: Span::DUMMY,
            })
        }),
    ]
}

fn stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        (lvalue(), expr()).prop_map(|(target, value)| Stmt::Assign {
            target,
            value,
            span: Span::DUMMY,
        }),
        (prop::collection::vec(call_arg(), 0..4)).prop_map(|args| Stmt::Call {
            name: "p".into(),
            args,
            span: Span::DUMMY,
        }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                scalar_name(),
                expr(),
                expr(),
                prop::option::of(expr()),
                prop::collection::vec(inner.clone(), 0..4)
            )
                .prop_map(|(var, lower, upper, step, body)| Stmt::Do {
                    var,
                    lower,
                    upper,
                    step,
                    body,
                    span: Span::DUMMY,
                }),
            (
                expr(),
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner, 0..3)
            )
                .prop_map(|(cond, then_body, else_body)| Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    span: Span::DUMMY,
                }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn expr_roundtrip(e in expr()) {
        let printed = unparse_expr(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse of `{printed}` failed: {err}"));
        prop_assert_eq!(&reparsed, &e, "printed: {}", printed);
    }

    #[test]
    fn stmt_roundtrip(stmts in prop::collection::vec(stmt(), 1..6)) {
        let printed = unparse_stmts(&stmts);
        let reparsed = parse_stmts(&printed)
            .unwrap_or_else(|err| panic!("reparse failed: {err}\n---\n{printed}"));
        prop_assert_eq!(&reparsed, &stmts, "printed:\n{}", printed);
    }

    #[test]
    fn program_roundtrip(body in prop::collection::vec(stmt(), 0..5)) {
        let program = Program {
            procedures: vec![Procedure {
                name: "p".into(),
                params: vec![Param { name: "q1".into(), span: Span::DUMMY }],
                decls: vec![fir::builder::decl_int("q1")],
                body: Vec::new(),
                is_main: false,
                span: Span::DUMMY,
            }],
            main: Procedure {
                name: "main".into(),
                params: Vec::new(),
                decls: vec![
                    fir::builder::decl_array("as", ScalarType::Real,
                        vec![fir::builder::int(16)]),
                    fir::builder::decl_int("n"),
                ],
                body,
                is_main: true,
                span: Span::DUMMY,
            },
        };
        let printed = unparse(&program);
        let reparsed = parse(&printed)
            .unwrap_or_else(|err| panic!("reparse failed: {err}\n---\n{printed}"));
        prop_assert_eq!(&reparsed, &program, "printed:\n{}", printed);
    }

    /// Unparsing is a fixpoint: unparse(parse(unparse(p))) == unparse(p).
    #[test]
    fn unparse_fixpoint(stmts in prop::collection::vec(stmt(), 1..5)) {
        let once = unparse_stmts(&stmts);
        let again = unparse_stmts(&parse_stmts(&once).unwrap());
        prop_assert_eq!(once, again);
    }
}
