//! Computation cost model and interpreter options.

/// Virtual CPU cost charged while interpreting computation. The absolute
/// values are arbitrary (a 2005-era ~1 GFLOP/s node ≈ 1 ns per scalar op);
/// only the *ratio* of compute cost to the network model's costs shapes the
//  results, and the benchmark harness sweeps that ratio explicitly.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Per expression node evaluated (literals, variables, operators…).
    pub ns_per_op: f64,
    /// Per statement dispatched (assignment bookkeeping, branch, loop step).
    pub ns_per_stmt: f64,
    /// Per user-procedure call (frame setup).
    pub ns_per_call: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            ns_per_op: 1.0,
            ns_per_stmt: 2.0,
            ns_per_call: 50.0,
        }
    }
}

impl CostModel {
    /// Scale all computation costs by `factor` (ablation knob: a faster CPU
    /// leaves less computation to hide communication behind).
    pub fn scaled(&self, factor: f64) -> CostModel {
        CostModel {
            ns_per_op: self.ns_per_op * factor,
            ns_per_stmt: self.ns_per_stmt * factor,
            ns_per_call: self.ns_per_call * factor,
        }
    }
}

/// Interpreter options.
#[derive(Debug, Clone)]
pub struct Options {
    pub cost: CostModel,
    /// Detect writes to array regions that a still-in-flight `mpi_isend`
    /// may not have drained yet (an MPI correctness hazard the indirect
    /// pattern's buffer expansion exists to avoid — paper §3.4).
    pub detect_buffer_reuse: bool,
    /// Record a full event trace.
    pub trace: bool,
    /// Run the [`crate::opt`] pass over the lowered program
    /// (constant folding, loop-invariant hoisting, block-summarized cost
    /// accounting). On by default; virtual times, stats, outputs, and
    /// traces are byte-identical either way (pinned by the differential
    /// suites) — turning it off only slows the simulation down.
    pub optimize: bool,
    /// Compile statically monomorphic `ChainScalar`/`ChainArray`
    /// instructions to typed accumulator loops ([`crate::typeck`]),
    /// skipping the per-operation value-tag dispatch. On by default;
    /// virtual times, outputs, and traces are byte-identical either way
    /// (the typed loops replicate `eval_binop`'s monomorphic arms
    /// bit-for-bit and block charges are precomputed — DESIGN.md §3).
    pub typed_chains: bool,
    /// Execute ranks as resumable state machines on a bounded worker set
    /// ([`crate::machine`]) instead of parking one OS thread per rank. On
    /// by default; virtual times, stats, outputs, and traces are
    /// byte-identical either way (pinned by the differential suites;
    /// argument in DESIGN.md §3) — the switch exists so those suites can
    /// prove it, mirroring `optimize`/`typed_chains`.
    pub resumable: bool,
    /// Worker threads driving the resumable engine; `None` means
    /// `min(np, available cores)`. A host-side throughput knob only —
    /// any value yields byte-identical results.
    pub rank_workers: Option<usize>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            cost: CostModel::default(),
            detect_buffer_reuse: false,
            trace: false,
            optimize: true,
            typed_chains: true,
            resumable: true,
            rank_workers: None,
        }
    }
}

impl Options {
    pub fn strict() -> Options {
        Options {
            detect_buffer_reuse: true,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let c = CostModel::default();
        assert!(c.ns_per_op > 0.0);
        assert!(c.ns_per_call > c.ns_per_stmt);
    }

    #[test]
    fn scaling() {
        let c = CostModel::default().scaled(10.0);
        assert_eq!(c.ns_per_op, 10.0);
        assert_eq!(c.ns_per_stmt, 20.0);
    }

    #[test]
    fn strict_enables_detection() {
        assert!(Options::strict().detect_buffer_reuse);
        assert!(!Options::default().detect_buffer_reuse);
    }
}
