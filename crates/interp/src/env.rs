//! Array views and bindings: Fortran by-reference array passing and
//! sequence association for section arguments.
//!
//! Scalar bindings live in the slot-indexed frame in `exec.rs` (resolved
//! by `lower.rs`); this module keeps the shared-storage array machinery.

use crate::value::{ArrayStorage, Scalar};
use std::cell::RefCell;
use std::rc::Rc;

/// A view into shared array storage: the whole array, or — for section
/// arguments passed to procedures — a contiguous window starting at
/// `offset` with `len` elements (Fortran sequence association: the callee
/// overlays its own declared shape onto the window).
#[derive(Debug, Clone)]
pub struct ArrayHandle {
    pub storage: Rc<RefCell<ArrayStorage>>,
    pub offset: usize,
    pub len: usize,
}

impl ArrayHandle {
    pub fn whole(storage: Rc<RefCell<ArrayStorage>>) -> ArrayHandle {
        let len = storage.borrow().len();
        ArrayHandle {
            storage,
            offset: 0,
            len,
        }
    }

    pub fn window(&self, offset: usize, len: usize) -> ArrayHandle {
        assert!(
            offset + len <= self.len,
            "window {offset}+{len} exceeds view of {} elements",
            self.len
        );
        ArrayHandle {
            storage: Rc::clone(&self.storage),
            offset: self.offset + offset,
            len,
        }
    }

    /// Identity of the underlying allocation (for buffer-reuse tracking).
    pub fn alloc_id(&self) -> usize {
        Rc::as_ptr(&self.storage) as usize
    }
}

/// An array *binding*: a view plus the shape the current procedure uses to
/// index it. For local arrays the shape matches the storage; for array
/// parameters the callee's declared shape overlays the passed window
/// (Fortran sequence association).
#[derive(Debug, Clone)]
pub struct BoundArray {
    pub handle: ArrayHandle,
    bounds: Vec<(i64, i64)>,
    strides: Vec<usize>,
}

impl BoundArray {
    /// Overlay `bounds` onto `handle`. Fails if the shape needs more
    /// elements than the view provides.
    pub fn from_shape(handle: ArrayHandle, bounds: Vec<(i64, i64)>) -> Result<Self, String> {
        let mut strides = Vec::with_capacity(bounds.len());
        let mut acc: usize = 1;
        for &(lo, hi) in &bounds {
            strides.push(acc);
            acc = acc
                .checked_mul((hi - lo + 1).max(0) as usize)
                .ok_or_else(|| "array shape overflows".to_string())?;
        }
        if acc > handle.len {
            return Err(format!(
                "declared shape needs {acc} elements but only {} are passed",
                handle.len
            ));
        }
        Ok(BoundArray {
            handle,
            bounds,
            strides,
        })
    }

    pub fn rank(&self) -> usize {
        self.bounds.len()
    }

    pub fn bounds(&self) -> &[(i64, i64)] {
        &self.bounds
    }

    pub fn extent(&self, dim: usize) -> usize {
        let (lo, hi) = self.bounds[dim];
        (hi - lo + 1).max(0) as usize
    }

    /// Total elements of the declared shape.
    pub fn shape_len(&self) -> usize {
        self.bounds.iter().map(|&(lo, hi)| (hi - lo + 1).max(0) as usize).product()
    }

    /// Flat offset (within the view) of a subscript vector against the
    /// bound shape.
    pub fn flat(&self, name: &str, indices: &[i64]) -> Result<usize, crate::value::BoundsError> {
        let mut off = 0usize;
        for (d, (&ix, &(lo, hi))) in indices.iter().zip(&self.bounds).enumerate() {
            if ix < lo || ix > hi {
                return Err(crate::value::BoundsError {
                    array: name.to_string(),
                    dim: d,
                    index: ix,
                    lower: lo,
                    upper: hi,
                });
            }
            off += (ix - lo) as usize * self.strides[d];
        }
        Ok(off)
    }

    pub fn get(&self, name: &str, indices: &[i64]) -> Result<Scalar, crate::value::BoundsError> {
        let off = self.flat(name, indices)?;
        Ok(self.handle.storage.borrow().data.get(self.handle.offset + off))
    }

    pub fn set(
        &self,
        name: &str,
        indices: &[i64],
        v: Scalar,
    ) -> Result<usize, crate::value::BoundsError> {
        let off = self.flat(name, indices)?;
        let abs = self.handle.offset + off;
        self.handle.storage.borrow_mut().data.set(abs, v);
        Ok(abs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Scalar;
    use fir::ast::ScalarType;

    #[test]
    fn whole_and_window_share_storage() {
        let st = Rc::new(RefCell::new(ArrayStorage::new(
            "a",
            ScalarType::Integer,
            vec![(1, 10)],
        )));
        let whole = ArrayHandle::whole(Rc::clone(&st));
        let win = whole.window(4, 3);
        win.storage.borrow_mut().data.set(4, Scalar::Int(99));
        assert_eq!(st.borrow().data.get(4), Scalar::Int(99));
        assert_eq!(win.offset, 4);
        assert_eq!(win.len, 3);
        assert_eq!(whole.alloc_id(), win.alloc_id());
    }

    #[test]
    #[should_panic(expected = "exceeds view")]
    fn window_overflow_panics() {
        let st = Rc::new(RefCell::new(ArrayStorage::new(
            "a",
            ScalarType::Integer,
            vec![(1, 4)],
        )));
        let whole = ArrayHandle::whole(st);
        let _ = whole.window(2, 3);
    }

    #[test]
    fn nested_window_offsets_compose() {
        let st = Rc::new(RefCell::new(ArrayStorage::new(
            "a",
            ScalarType::Integer,
            vec![(1, 10)],
        )));
        let w1 = ArrayHandle::whole(st).window(2, 6);
        let w2 = w1.window(3, 2);
        assert_eq!(w2.offset, 5);
    }

    #[test]
    fn bound_array_shape_overlay() {
        let st = Rc::new(RefCell::new(ArrayStorage::new(
            "a",
            ScalarType::Integer,
            vec![(1, 6)],
        )));
        let whole = ArrayHandle::whole(st);
        // Overlay a 2x3 shape onto the 6-element window.
        let b = BoundArray::from_shape(whole.clone(), vec![(1, 2), (1, 3)]).unwrap();
        assert_eq!(b.rank(), 2);
        assert_eq!(b.shape_len(), 6);
        b.set("a", &[2, 1], Scalar::Int(7)).unwrap();
        assert_eq!(b.get("a", &[2, 1]).unwrap(), Scalar::Int(7));
        // A shape needing more elements than the window fails.
        assert!(BoundArray::from_shape(whole, vec![(1, 7)]).is_err());
    }
}
