//! The slot-indexed executor: runs one rank's view of a lowered
//! mini-Fortran program against a [`clustersim::Comm`] endpoint.
//!
//! Names were resolved to dense frame-slot indices by [`crate::lower`], so
//! the hot loop below is `Vec` indexing — no string hashing, no name
//! clones. Cost accounting (one `op` per expression node, `ns_per_stmt`
//! per statement, `ns_per_call` per user call) is identical to the
//! historical tree-walker; virtual times are pinned byte-for-byte by the
//! golden and differential suites.
//!
//! Interpreter-detected runtime errors (bounds violations, bad MPI
//! arguments, non-contiguous communication buffers, buffer-reuse hazards)
//! panic with an `interp:` message; the cluster runner converts rank panics
//! into [`clustersim::SimError::RankPanic`].

use crate::cost::Options;
use crate::env::{ArrayHandle, BoundArray};
use crate::lower::{
    BufferKind, Builtin, ChainTy, Hoist, Instr, Intr, LArg, LCallArg, LExpr, LProc, LProgram,
    LSecDim, LSection, LStmt, Operand,
};
use crate::value::{ArrayStorage, Scalar};
use clustersim::{Bytes, Comm, RecvId, SimTime};
use fir::ast::{BinOp, UnOp};
use std::cell::RefCell;
use std::rc::Rc;

macro_rules! rt_err {
    ($($arg:tt)*) => {
        panic!("interp: {}", format!($($arg)*))
    };
}

/// A posted receive's target slice.
struct PendingBuf {
    storage: Rc<RefCell<ArrayStorage>>,
    offset: usize,
    count: usize,
}

/// A sent region that the NIC may still be reading.
struct InflightRegion {
    alloc: usize,
    start: usize,
    end: usize,
    expires: SimTime,
}

/// One procedure activation's slot-indexed bindings.
pub(crate) struct LFrame {
    /// Seeded with the proc's typed zeros, so a read of a never-written
    /// slot returns exactly the tree-walker's deterministic default
    /// without an `Option` in the hot path.
    pub(crate) scalars: Vec<Scalar>,
    arrays: Vec<Option<BoundArray>>,
    /// Loop-invariant values cached at loop entry ([`crate::opt`]); every
    /// `LExpr::Hoisted` read is dominated by its loop's entry write.
    hoisted: Vec<Scalar>,
}

impl LFrame {
    fn new(proc: &LProc, rank: i64, np: i64) -> LFrame {
        let mut f = LFrame {
            scalars: proc.scalar_defaults.clone(),
            arrays: (0..proc.array_names.len()).map(|_| None).collect(),
            hoisted: vec![Scalar::Int(0); proc.hoist_slots],
        };
        // Slots 0/1 are reserved by the lowering for mynum/np.
        f.scalars[0] = Scalar::Int(rank);
        f.scalars[1] = Scalar::Int(np);
        f
    }

    #[inline(always)]
    fn scalar(&self, _proc: &LProc, slot: u32) -> Scalar {
        self.scalars[slot as usize]
    }

    #[inline]
    fn array(&self, slot: u32) -> &BoundArray {
        self.arrays[slot as usize]
            .as_ref()
            .expect("arrays are bound during allocate_locals, before any use")
    }

    /// Iterate bound arrays with their names (final dump).
    pub fn arrays<'a>(
        &'a self,
        proc: &'a LProc,
    ) -> impl Iterator<Item = (&'a String, &'a BoundArray)> {
        proc.array_names
            .iter()
            .zip(&self.arrays)
            .filter_map(|(n, a)| a.as_ref().map(|b| (n, b)))
    }
}

/// The interpreter's resumable state: everything a rank's execution owns
/// *except* the [`Comm`] endpoint, which is threaded through as a method
/// parameter. That split is what makes suspension possible — a parked rank
/// is an `Interp` (plus a continuation stack, see [`crate::machine`])
/// sitting in a table, while the `Comm` lives alongside it and both are
/// picked up by whichever worker resumes the rank.
pub(crate) struct Interp<'p> {
    pub(crate) program: &'p LProgram,
    pub(crate) opts: &'p Options,
    pub prints: Vec<String>,
    pending: Vec<(RecvId, PendingBuf)>,
    inflight: Vec<InflightRegion>,
    ops: u64,
    /// Reusable operand stack and subscript buffer for block tapes.
    stack: Vec<Scalar>,
    idx_buf: Vec<i64>,
}

impl<'p> Interp<'p> {
    pub fn new(program: &'p LProgram, opts: &'p Options) -> Self {
        Interp {
            program,
            opts,
            prints: Vec::new(),
            pending: Vec::new(),
            inflight: Vec::new(),
            ops: 0,
            stack: Vec::new(),
            idx_buf: Vec::new(),
        }
    }

    /// Execute the main program to completion (blocking engine); returns
    /// its final frame (for array dumps) along with the main proc for name
    /// resolution.
    pub fn run_main(&mut self, comm: &mut Comm) -> (LFrame, &'p LProc) {
        let main = &self.program.procs[self.program.main];
        let mut frame = self.fresh_frame(main, comm);
        self.allocate_locals(main, &mut frame, &[], comm);
        let cell = FrameCell::new(frame);
        for s in &main.body {
            self.exec_stmt(main, &cell, s, comm);
        }
        (cell.take(), main)
    }

    pub(crate) fn fresh_frame(&self, proc: &LProc, comm: &Comm) -> LFrame {
        LFrame::new(proc, comm.rank() as i64, comm.np() as i64)
    }

    // -- cost charging -------------------------------------------------------

    pub(crate) fn charge_stmt(&mut self, comm: &mut Comm) {
        let c = &self.opts.cost;
        let ns = self.ops as f64 * c.ns_per_op + c.ns_per_stmt;
        self.ops = 0;
        comm.advance(ns);
    }

    fn charge_ops_only(&mut self, comm: &mut Comm) {
        let ns = self.ops as f64 * self.opts.cost.ns_per_op;
        self.ops = 0;
        comm.advance(ns);
    }

    // -- expression evaluation -----------------------------------------------

    pub(crate) fn eval(&mut self, proc: &LProc, frame: &LFrame, e: &LExpr) -> Scalar {
        self.ops += 1;
        match e {
            LExpr::Int(v) => Scalar::Int(*v),
            LExpr::Real(v) => Scalar::Real(*v),
            LExpr::Var(slot) => frame.scalar(proc, *slot),
            // Folded/hoisted subtrees charge their historical node count
            // (minus the 1 charged on entry above) so virtual times match
            // the unoptimized walk exactly.
            LExpr::Const { v, ops } => {
                self.ops += u64::from(*ops) - 1;
                *v
            }
            LExpr::Hoisted { slot, ops } => {
                self.ops += u64::from(*ops) - 1;
                frame.hoisted[*slot as usize]
            }
            LExpr::ArrayRef { slot, name, indices } => {
                let idx = self.eval_indices(proc, frame, indices);
                let Some(slot) = slot else {
                    rt_err!("`{name}` is not an array in this scope");
                };
                match frame.array(*slot).get(name, &idx) {
                    Ok(v) => v,
                    Err(be) => rt_err!("{be}"),
                }
            }
            LExpr::Intrinsic { op, name, args } => self.eval_intrinsic(proc, frame, *op, name, args),
            LExpr::Unary { op, operand } => {
                let v = self.eval(proc, frame, operand);
                match op {
                    UnOp::Neg => match v {
                        Scalar::Int(x) => Scalar::Int(-x),
                        Scalar::Real(x) => Scalar::Real(-x),
                    },
                    UnOp::Not => Scalar::Int(i64::from(!v.is_true())),
                }
            }
            LExpr::Binary { op, lhs, rhs } => {
                let a = self.eval(proc, frame, lhs);
                let b = self.eval(proc, frame, rhs);
                eval_binop(*op, a, b)
            }
        }
    }

    fn eval_indices(&mut self, proc: &LProc, frame: &LFrame, indices: &[LExpr]) -> Vec<i64> {
        indices
            .iter()
            .map(|e| self.eval(proc, frame, e).expect_int("array subscript"))
            .collect()
    }

    fn eval_intrinsic(
        &mut self,
        proc: &LProc,
        frame: &LFrame,
        op: Intr,
        name: &str,
        args: &[LExpr],
    ) -> Scalar {
        let vals: Vec<Scalar> = args.iter().map(|a| self.eval(proc, frame, a)).collect();
        match try_intrinsic(op, name, &vals) {
            Ok(v) => v,
            Err(msg) => rt_err!("{msg}"),
        }
    }

    // -- statements -----------------------------------------------------------

    pub(crate) fn exec_stmt(
        &mut self,
        proc: &'p LProc,
        frame: &FrameCell,
        s: &'p LStmt,
        comm: &mut Comm,
    ) {
        match s {
            LStmt::AssignScalar { slot, ty, value } => {
                let v = {
                    let f = frame.borrow();
                    self.eval(proc, &f, value)
                };
                self.charge_stmt(comm);
                frame.borrow_mut().scalars[*slot as usize] = v.convert_to(*ty);
            }
            LStmt::AssignArray {
                slot,
                name,
                indices,
                value,
            } => {
                let (idx, v) = {
                    let f = frame.borrow();
                    let idx = self.eval_indices(proc, &f, indices);
                    let v = self.eval(proc, &f, value);
                    (idx, v)
                };
                self.charge_stmt(comm);
                let Some(slot) = slot else {
                    rt_err!("`{name}` is not an array in this scope");
                };
                let (abs, alloc) = {
                    let f = frame.borrow();
                    let binding = f.array(*slot);
                    match binding.set(name, &idx, v) {
                        Ok(abs) => (abs, binding.handle.alloc_id()),
                        Err(be) => rt_err!("{be}"),
                    }
                };
                if self.opts.detect_buffer_reuse {
                    self.check_inflight_write(alloc, abs, name, comm);
                }
            }
            LStmt::Do {
                var,
                lower,
                upper,
                step,
                var_name,
                body,
                hoists,
                iter_charge,
            } => {
                let (lo, hi, st) =
                    self.do_prologue(proc, frame, lower, upper, step.as_ref(), var_name, hoists, comm);
                if let (Some(charge), [LStmt::Block { code, .. }]) =
                    (*iter_charge, body.as_slice())
                {
                    self.run_summarized_do(proc, frame, *var, code, lo, hi, st, charge, comm);
                } else {
                    let mut i = lo;
                    loop {
                        if (st > 0 && i > hi) || (st < 0 && i < hi) {
                            break;
                        }
                        frame.borrow_mut().scalars[*var as usize] = Scalar::Int(i);
                        for b in body {
                            self.exec_stmt(proc, frame, b, comm);
                        }
                        // loop increment + test bookkeeping
                        comm.advance(self.opts.cost.ns_per_stmt);
                        i += st;
                    }
                }
            }
            LStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = {
                    let f = frame.borrow();
                    self.eval(proc, &f, cond)
                };
                self.charge_stmt(comm);
                let body = if c.is_true() { then_body } else { else_body };
                for b in body {
                    self.exec_stmt(proc, frame, b, comm);
                }
            }
            LStmt::Block { code, charge, .. } => {
                debug_assert_eq!(self.ops, 0, "blocks start at a charge boundary");
                let mut stack = std::mem::take(&mut self.stack);
                let mut idx = std::mem::take(&mut self.idx_buf);
                {
                    let mut f = frame.borrow_mut();
                    run_tape(proc, &mut f, code, &mut stack, &mut idx);
                }
                self.stack = stack;
                self.idx_buf = idx;
                // The per-statement charges were precomputed (and rounded
                // per statement, exactly like `charge_stmt`) at opt time;
                // one summarizing add replaces them all.
                comm.advance_exact(SimTime::from_ns(*charge));
            }
            LStmt::SetVar { .. } => {
                unreachable!("SetVar only appears inside summarized blocks")
            }
            LStmt::CallBuiltin { op, name, args } => {
                self.exec_builtin(proc, frame, *op, name, args, comm)
            }
            LStmt::CallUser { proc: callee, args } => {
                self.exec_user_call(proc, frame, *callee, args, comm)
            }
            LStmt::CallUnknown { name } => {
                rt_err!("call to unknown subroutine `{name}` (validation gap)")
            }
        }
    }

    /// A `do` statement's entry sequence, shared by both engines: evaluate
    /// the bounds, reject a zero step, charge the statement, cache the
    /// hoisted invariants. Returns `(lo, hi, st)`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn do_prologue(
        &mut self,
        proc: &'p LProc,
        frame: &FrameCell,
        lower: &'p LExpr,
        upper: &'p LExpr,
        step: Option<&'p LExpr>,
        var_name: &str,
        hoists: &'p [Hoist],
        comm: &mut Comm,
    ) -> (i64, i64, i64) {
        let (lo, hi, st) = {
            let f = frame.borrow();
            let lo = self.eval(proc, &f, lower).expect_int("loop bound");
            let hi = self.eval(proc, &f, upper).expect_int("loop bound");
            let st = match step {
                None => 1,
                Some(e) => self.eval(proc, &f, e).expect_int("loop step"),
            };
            (lo, hi, st)
        };
        if st == 0 {
            rt_err!("zero loop step in `do {var_name}`");
        }
        self.charge_stmt(comm);
        self.eval_hoists(proc, frame, hoists);
        (lo, hi, st)
    }

    /// Whole-body-block fast path, shared by both engines: hold the frame
    /// borrow and scratch buffers across iterations, and charge
    /// `iterations × per-iteration` in ONE add at the end — integer
    /// multiplication distributes over the addition the tree-walker
    /// performed, and no statement in the block can observe the clock, so
    /// virtual times are unchanged to the bit. Contains no blocking point,
    /// so the resumable engine runs it inline without suspending.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_summarized_do(
        &mut self,
        proc: &'p LProc,
        frame: &FrameCell,
        var: u32,
        code: &'p [Instr],
        lo: i64,
        hi: i64,
        st: i64,
        charge: u64,
        comm: &mut Comm,
    ) {
        let mut stack = std::mem::take(&mut self.stack);
        let mut idx = std::mem::take(&mut self.idx_buf);
        let mut iters: u64 = 0;
        {
            let mut f = frame.borrow_mut();
            let mut i = lo;
            loop {
                if (st > 0 && i > hi) || (st < 0 && i < hi) {
                    break;
                }
                f.scalars[var as usize] = Scalar::Int(i);
                run_tape(proc, &mut f, code, &mut stack, &mut idx);
                iters += 1;
                i += st;
            }
        }
        self.stack = stack;
        self.idx_buf = idx;
        if iters > 0 {
            let total = charge
                .checked_mul(iters)
                .expect("SimTime overflow in summarized loop");
            comm.advance_exact(SimTime::from_ns(total));
        }
    }

    /// Cache a loop's invariant subtrees at loop entry, *uncharged*: the
    /// per-use cost stays on every `LExpr::Hoisted` read (which bills the
    /// replaced subtree's node count), so the entry computation must not
    /// advance the clock. Hoisted expressions are pure and total by
    /// construction ([`crate::opt`]), so evaluating them here — even when
    /// the loop then runs zero iterations — cannot fail or be observed.
    fn eval_hoists(&mut self, proc: &'p LProc, frame: &FrameCell, hoists: &'p [Hoist]) {
        if hoists.is_empty() {
            return;
        }
        debug_assert_eq!(self.ops, 0, "hoists evaluate at a charge boundary");
        for h in hoists {
            let v = {
                let f = frame.borrow();
                self.eval(proc, &f, &h.expr)
            };
            frame.borrow_mut().hoisted[h.slot as usize] = v;
        }
        self.ops = 0;
    }

    fn check_inflight_write(&mut self, alloc: usize, abs: usize, name: &str, comm: &Comm) {
        let now = comm.now();
        self.inflight.retain(|r| r.expires > now);
        if let Some(r) = self
            .inflight
            .iter()
            .find(|r| r.alloc == alloc && abs >= r.start && abs < r.end)
        {
            rt_err!(
                "buffer-reuse hazard: rank {} overwrote element {} of `{name}` while an \
                 mpi_isend of [{}, {}) is still in flight (drains at {})",
                comm.rank(),
                abs,
                r.start,
                r.end,
                r.expires
            );
        }
    }

    // -- procedure calls -----------------------------------------------------------

    fn exec_user_call(
        &mut self,
        caller: &'p LProc,
        frame: &FrameCell,
        callee_idx: usize,
        args: &'p [LCallArg],
        comm: &mut Comm,
    ) {
        let callee_frame = self.prepare_user_call(caller, frame, callee_idx, args, comm);
        let callee = &self.program.procs[callee_idx];
        let cell = FrameCell::new(callee_frame);
        for s in &callee.body {
            self.exec_stmt(callee, &cell, s, comm);
        }
        // Arrays were by reference; scalar params are by value (documented).
    }

    /// Everything a user call does before its body runs, shared by both
    /// engines: argument evaluation/binding, the call charge, and local
    /// allocation. Returns the ready-to-run callee frame.
    pub(crate) fn prepare_user_call(
        &mut self,
        caller: &'p LProc,
        frame: &FrameCell,
        callee_idx: usize,
        args: &'p [LCallArg],
        comm: &mut Comm,
    ) -> LFrame {
        let callee = &self.program.procs[callee_idx];
        let mut callee_frame = self.fresh_frame(callee, comm);
        let mut handles: Vec<Option<ArrayHandle>> = vec![None; callee.nparams];

        for (i, arg) in args.iter().enumerate() {
            match arg {
                LCallArg::Array { caller_slot } => {
                    let f = frame.borrow();
                    let b = f.array(*caller_slot);
                    handles[i] = Some(b.handle.window(0, b.shape_len()));
                }
                LCallArg::Section(sec) => {
                    handles[i] = Some(self.resolve_section(caller, frame, sec));
                }
                LCallArg::Scalar {
                    expr,
                    callee_slot,
                    ty,
                } => {
                    let v = {
                        let f = frame.borrow();
                        self.eval(caller, &f, expr)
                    };
                    callee_frame.scalars[*callee_slot as usize] = v.convert_to(*ty);
                }
            }
        }
        self.charge_ops_only(comm);
        comm.advance(self.opts.cost.ns_per_call);

        self.allocate_locals(callee, &mut callee_frame, &handles, comm);
        callee_frame
    }

    /// Allocate local arrays and bind array parameters, in declaration
    /// order, evaluating bound expressions in the growing frame. Declared
    /// scalars need no explicit seeding: the per-slot typed defaults in
    /// [`LProc::scalar_defaults`] encode exactly the zero the tree-walker
    /// used to insert.
    pub(crate) fn allocate_locals(
        &mut self,
        proc: &'p LProc,
        frame: &mut LFrame,
        handles: &[Option<ArrayHandle>],
        comm: &mut Comm,
    ) {
        for decl in &proc.array_decls {
            let bounds: Vec<(i64, i64)> = decl
                .dims
                .iter()
                .map(|(lo, hi)| {
                    let lo = self.eval(proc, frame, lo).expect_int("array bound");
                    let hi = self.eval(proc, frame, hi).expect_int("array bound");
                    (lo, hi)
                })
                .collect();
            let passed = decl.param.and_then(|i| handles.get(i).cloned().flatten());
            let binding = match passed {
                Some(handle) => match BoundArray::from_shape(handle, bounds) {
                    Ok(b) => b,
                    Err(msg) => rt_err!(
                        "binding parameter `{}` of `{}`: {msg}",
                        decl.name,
                        proc.name
                    ),
                },
                None => {
                    let storage = Rc::new(RefCell::new(ArrayStorage::new(
                        &decl.name,
                        decl.ty,
                        bounds.clone(),
                    )));
                    let handle = ArrayHandle::whole(storage);
                    BoundArray::from_shape(handle, bounds).expect("fresh allocation fits")
                }
            };
            frame.arrays[decl.slot as usize] = Some(binding);
        }
        self.charge_ops_only(comm);
    }

    // -- builtin (MPI) subroutines -----------------------------------------------

    pub(crate) fn exec_builtin(
        &mut self,
        proc: &'p LProc,
        frame: &FrameCell,
        op: Builtin,
        name: &str,
        args: &'p [LArg],
        comm: &mut Comm,
    ) {
        match op {
            Builtin::Isend => self.mpi_isend(proc, frame, args, comm),
            Builtin::Irecv => self.mpi_irecv(proc, frame, args, comm),
            Builtin::WaitallRecv => {
                self.charge_stmt(comm);
                let done = comm.wait_all_recvs();
                self.apply_received(done);
            }
            Builtin::Waitall => {
                self.charge_stmt(comm);
                let done = comm.wait_all();
                self.finish_waitall(done);
            }
            Builtin::Barrier => {
                self.charge_stmt(comm);
                comm.barrier();
            }
            Builtin::Alltoall => self.mpi_alltoall(proc, frame, args, comm),
            Builtin::Print => {
                let line = {
                    let f = frame.borrow();
                    args.iter()
                        .map(|a| match a {
                            LArg::Expr { expr, .. } => {
                                self.eval(proc, &f, expr).to_string()
                            }
                            LArg::Section(s) => format!("<section {}>", s.name),
                        })
                        .collect::<Vec<_>>()
                        .join(" ")
                };
                self.charge_ops_only(comm);
                self.prints.push(line);
            }
            Builtin::Unknown => rt_err!("unknown builtin `{name}` (validation gap)"),
        }
    }

    /// A `mpi_waitall`'s local tail once all receives matched and sends
    /// drained: decode payloads into their registered buffers and retire
    /// the in-flight send regions. Pure bookkeeping — touches no clock, so
    /// both engines may run it at their own point after the blocking part.
    pub(crate) fn finish_waitall(&mut self, done: Vec<(RecvId, Bytes)>) {
        self.apply_received(done);
        self.inflight.clear();
    }

    fn scalar_arg(
        &mut self,
        proc: &LProc,
        frame: &FrameCell,
        args: &[LArg],
        i: usize,
        what: &str,
    ) -> i64 {
        let f = frame.borrow();
        match &args[i] {
            LArg::Expr { expr, .. } => self.eval(proc, &f, expr).expect_int(what),
            LArg::Section(s) => rt_err!("{what} must be a scalar, got section of `{}`", s.name),
        }
    }

    /// Resolve an MPI buffer argument to a contiguous element window.
    fn resolve_buffer(
        &mut self,
        proc: &'p LProc,
        frame: &FrameCell,
        arg: &'p LArg,
        ctx: &str,
    ) -> ArrayHandle {
        match arg {
            LArg::Expr { buffer, name, .. } => match buffer {
                BufferKind::Array(slot) => {
                    let f = frame.borrow();
                    let b = f.array(*slot);
                    b.handle.window(0, b.shape_len())
                }
                BufferKind::NotArray => rt_err!("{ctx}: `{name}` is not an array"),
                BufferKind::NotAVar(span) => rt_err!(
                    "{ctx}: buffer must be an array or section, got expression at {:?}",
                    span
                ),
            },
            LArg::Section(sec) => self.resolve_section(proc, frame, sec),
        }
    }

    /// Resolve a section to a contiguous window (column-major rule: all
    /// dims before the last varying one must cover their full extent).
    fn resolve_section(&mut self, proc: &LProc, frame: &FrameCell, sec: &LSection) -> ArrayHandle {
        let f = frame.borrow();
        let Some(slot) = sec.slot else {
            rt_err!("section base `{}` is not an array", sec.name);
        };
        let binding = f.array(slot);
        if sec.dims.len() != binding.rank() {
            rt_err!(
                "section of `{}` has {} dims, array has rank {}",
                sec.name,
                sec.dims.len(),
                binding.rank()
            );
        }
        let mut lows = Vec::with_capacity(sec.dims.len());
        let mut counts = Vec::with_capacity(sec.dims.len());
        for (d, sd) in sec.dims.iter().enumerate() {
            let (blo, bhi) = binding.bounds()[d];
            let (lo, hi) = match sd {
                LSecDim::Index(e) => {
                    let v = self.eval(proc, &f, e).expect_int("section index");
                    (v, v)
                }
                LSecDim::Range(a, b) => {
                    let lo = a
                        .as_ref()
                        .map(|e| self.eval(proc, &f, e).expect_int("section bound"))
                        .unwrap_or(blo);
                    let hi = b
                        .as_ref()
                        .map(|e| self.eval(proc, &f, e).expect_int("section bound"))
                        .unwrap_or(bhi);
                    (lo, hi)
                }
            };
            if lo < blo || hi > bhi {
                rt_err!(
                    "section of `{}` dim {}: {}:{} outside declared {}..={}",
                    sec.name,
                    d + 1,
                    lo,
                    hi,
                    blo,
                    bhi
                );
            }
            lows.push(lo);
            counts.push((hi - lo + 1).max(0) as usize);
        }
        let len: usize = counts.iter().product();
        if len == 0 {
            return binding.handle.window(0, 0);
        }
        // Contiguity: dims before the last varying dim must be full extent.
        if let Some(p) = counts.iter().rposition(|&c| c != 1) {
            for (d, &cnt) in counts.iter().enumerate().take(p) {
                if cnt != binding.extent(d) {
                    rt_err!(
                        "section of `{}` is not contiguous: dim {} covers {} of {} elements \
                         while dim {} varies",
                        sec.name,
                        d + 1,
                        counts[d],
                        binding.extent(d),
                        p + 1
                    );
                }
            }
        }
        let offset = match binding.flat(&sec.name, &lows) {
            Ok(o) => o,
            Err(be) => rt_err!("{be}"),
        };
        binding.handle.window(offset, len)
    }

    fn mpi_isend(&mut self, proc: &'p LProc, frame: &FrameCell, args: &'p [LArg], comm: &mut Comm) {
        let buf = self.resolve_buffer(proc, frame, &args[0], "mpi_isend");
        let count = self.scalar_arg(proc, frame, args, 1, "mpi_isend count");
        let dest = self.scalar_arg(proc, frame, args, 2, "mpi_isend dest");
        let tag = self.scalar_arg(proc, frame, args, 3, "mpi_isend tag");
        self.charge_stmt(comm);
        let me = comm.rank() as i64;
        let np = comm.np() as i64;
        if count < 0 || (count as usize) > buf.len {
            rt_err!(
                "mpi_isend: count {count} exceeds buffer window of {} elements",
                buf.len
            );
        }
        if dest < 0 || dest >= np {
            rt_err!("mpi_isend: dest {dest} out of range 0..{np}");
        }
        if dest == me {
            rt_err!("mpi_isend: self-send (rank {me}); copy locally instead");
        }
        let bytes = {
            let st = buf.storage.borrow();
            Bytes::from(st.encode(buf.offset, count as usize))
        };
        let nic_done = comm.isend(dest as usize, tag, bytes);
        if self.opts.detect_buffer_reuse {
            self.inflight.push(InflightRegion {
                alloc: buf.alloc_id(),
                start: buf.offset,
                end: buf.offset + count as usize,
                expires: nic_done,
            });
        }
    }

    fn mpi_irecv(&mut self, proc: &'p LProc, frame: &FrameCell, args: &'p [LArg], comm: &mut Comm) {
        let buf = self.resolve_buffer(proc, frame, &args[0], "mpi_irecv");
        let count = self.scalar_arg(proc, frame, args, 1, "mpi_irecv count");
        let src = self.scalar_arg(proc, frame, args, 2, "mpi_irecv src");
        let tag = self.scalar_arg(proc, frame, args, 3, "mpi_irecv tag");
        self.charge_stmt(comm);
        let me = comm.rank() as i64;
        let np = comm.np() as i64;
        if count < 0 || (count as usize) > buf.len {
            rt_err!(
                "mpi_irecv: count {count} exceeds buffer window of {} elements",
                buf.len
            );
        }
        if src < 0 || src >= np {
            rt_err!("mpi_irecv: src {src} out of range 0..{np}");
        }
        if src == me {
            rt_err!("mpi_irecv: self-receive (rank {me})");
        }
        let id = comm.irecv(src as usize, tag);
        self.pending.push((
            id,
            PendingBuf {
                storage: Rc::clone(&buf.storage),
                offset: buf.offset,
                count: count as usize,
            },
        ));
    }

    pub(crate) fn apply_received(&mut self, done: Vec<(RecvId, Bytes)>) {
        for (id, payload) in done {
            let pos = self
                .pending
                .iter()
                .position(|(pid, _)| *pid == id)
                .unwrap_or_else(|| rt_err!("completed receive with no registered buffer"));
            let (_, buf) = self.pending.remove(pos);
            if payload.len() != buf.count * 8 {
                rt_err!(
                    "mpi receive: expected {} elements ({} bytes), got {} bytes",
                    buf.count,
                    buf.count * 8,
                    payload.len()
                );
            }
            buf.storage
                .borrow_mut()
                .decode_into(buf.offset, payload.as_ref());
        }
    }

    fn mpi_alltoall(&mut self, proc: &'p LProc, frame: &FrameCell, args: &'p [LArg], comm: &mut Comm) {
        let (recv, count, payloads) = self.prepare_alltoall(proc, frame, args, comm);
        let received = comm.alltoall(payloads);
        Self::finish_alltoall(&recv, count, received);
    }

    /// An `mpi_alltoall`'s entry sequence, shared by both engines: resolve
    /// and check both buffers, charge the statement, encode the per-
    /// destination payloads. Returns `(recv window, count, payloads)` —
    /// everything the completion side needs.
    pub(crate) fn prepare_alltoall(
        &mut self,
        proc: &'p LProc,
        frame: &FrameCell,
        args: &'p [LArg],
        comm: &mut Comm,
    ) -> (ArrayHandle, usize, Vec<Bytes>) {
        let send = self.resolve_buffer(proc, frame, &args[0], "mpi_alltoall send buffer");
        let count = self.scalar_arg(proc, frame, args, 1, "mpi_alltoall count");
        let recv = self.resolve_buffer(proc, frame, &args[2], "mpi_alltoall recv buffer");
        self.charge_stmt(comm);
        let np = comm.np();
        if count < 0 {
            rt_err!("mpi_alltoall: negative count {count}");
        }
        let count = count as usize;
        if count * np > send.len {
            rt_err!(
                "mpi_alltoall: need {} elements in send buffer, have {}",
                count * np,
                send.len
            );
        }
        if count * np > recv.len {
            rt_err!(
                "mpi_alltoall: need {} elements in recv buffer, have {}",
                count * np,
                recv.len
            );
        }
        let payloads: Vec<Bytes> = {
            let st = send.storage.borrow();
            (0..np)
                .map(|d| Bytes::from(st.encode(send.offset + d * count, count)))
                .collect()
        };
        (recv, count, payloads)
    }

    /// Decode a completed alltoall's received payloads into the recv
    /// window. Pure bookkeeping — touches no clock.
    pub(crate) fn finish_alltoall(recv: &ArrayHandle, count: usize, received: Vec<Bytes>) {
        let mut st = recv.storage.borrow_mut();
        for (srcr, payload) in received.into_iter().enumerate() {
            if payload.len() != count * 8 {
                rt_err!(
                    "mpi_alltoall: partner {srcr} sent {} bytes, expected {}",
                    payload.len(),
                    count * 8
                );
            }
            st.decode_into(recv.offset + srcr * count, payload.as_ref());
        }
    }
}

/// Interior-mutable frame wrapper: statements need `&mut LFrame` for
/// scalar stores while expression evaluation holds shared borrows.
pub(crate) struct FrameCell(RefCell<LFrame>);

impl FrameCell {
    pub(crate) fn new(frame: LFrame) -> FrameCell {
        FrameCell(RefCell::new(frame))
    }

    pub(crate) fn borrow(&self) -> std::cell::Ref<'_, LFrame> {
        self.0.borrow()
    }

    pub(crate) fn borrow_mut(&self) -> std::cell::RefMut<'_, LFrame> {
        self.0.borrow_mut()
    }

    pub(crate) fn take(&self) -> LFrame {
        self.0.replace(LFrame {
            scalars: Vec::new(),
            arrays: Vec::new(),
            hoisted: Vec::new(),
        })
    }
}

/// The intrinsic-function kernel, shared verbatim between the executor and
/// the constant folder ([`crate::opt`]) so a folded call computes exactly
/// what the tree-walker would have. `Err` carries the message the executor
/// raises as an `interp:` runtime error; argument-type panics (a real
/// `mod` argument) surface identically from both callers.
pub(crate) fn try_intrinsic(op: Intr, name: &str, vals: &[Scalar]) -> Result<Scalar, String> {
    Ok(match op {
        Intr::Mod => {
            let a = vals[0].expect_int("mod argument");
            let b = vals[1].expect_int("mod argument");
            if b == 0 {
                return Err("mod by zero".into());
            }
            Scalar::Int(a % b) // Fortran MOD: sign of the dividend
        }
        Intr::Min | Intr::Max => {
            let is_min = op == Intr::Min;
            let any_real = vals.iter().any(|v| matches!(v, Scalar::Real(_)));
            if any_real {
                let it = vals.iter().map(|v| v.as_real());
                let r = if is_min {
                    it.fold(f64::INFINITY, f64::min)
                } else {
                    it.fold(f64::NEG_INFINITY, f64::max)
                };
                Scalar::Real(r)
            } else {
                let it = vals.iter().map(|v| v.truncate_to_int());
                Scalar::Int(if is_min {
                    it.min().expect("arity checked")
                } else {
                    it.max().expect("arity checked")
                })
            }
        }
        Intr::Abs => match vals[0] {
            Scalar::Int(v) => Scalar::Int(v.abs()),
            Scalar::Real(v) => Scalar::Real(v.abs()),
        },
        Intr::Sqrt => Scalar::Real(vals[0].as_real().sqrt()),
        Intr::Sin => Scalar::Real(vals[0].as_real().sin()),
        Intr::Cos => Scalar::Real(vals[0].as_real().cos()),
        Intr::Exp => Scalar::Real(vals[0].as_real().exp()),
        Intr::Log => Scalar::Real(vals[0].as_real().ln()),
        Intr::Floor => Scalar::Int(vals[0].as_real().floor() as i64),
        Intr::Int => Scalar::Int(vals[0].truncate_to_int()),
        Intr::Real => Scalar::Real(vals[0].as_real()),
        Intr::Unknown => return Err(format!("unknown intrinsic `{name}` (validation gap)")),
    })
}

/// Run one summarized block's flat postfix tape. Charging is the caller's
/// one precomputed add, so no op counting happens here; the instruction
/// order reproduces the tree-walker's evaluation order exactly, including
/// where any runtime error fires. Array stores are only compiled into
/// tapes when buffer-reuse detection is off (the detector compares
/// against `now()`, which mid-block sits before the summarized charge).
/// A free function (no `Interp` receiver) so loop drivers can hold the
/// frame borrow and scratch buffers across iterations.
fn run_tape(
    proc: &LProc,
    f: &mut LFrame,
    code: &[Instr],
    stack: &mut Vec<Scalar>,
    idx: &mut Vec<i64>,
) {
    for ins in code {
        match ins {
            Instr::PushInt(v) => stack.push(Scalar::Int(*v)),
            Instr::PushReal(v) => stack.push(Scalar::Real(*v)),
            Instr::PushConst(v) => stack.push(*v),
            Instr::PushVar(slot) => stack.push(f.scalar(proc, *slot)),
            Instr::PushHoisted(slot) => stack.push(f.hoisted[*slot as usize]),
            Instr::ExpectIdx => {
                let v = stack
                    .pop()
                    .expect("tape balance")
                    .expect_int("array subscript");
                stack.push(Scalar::Int(v));
            }
            Instr::PushIdxVar(slot) => {
                let v = f.scalar(proc, *slot).expect_int("array subscript");
                stack.push(Scalar::Int(v));
            }
            Instr::Unary(op) => {
                let v = stack.pop().expect("tape balance");
                stack.push(match op {
                    UnOp::Neg => match v {
                        Scalar::Int(x) => Scalar::Int(-x),
                        Scalar::Real(x) => Scalar::Real(-x),
                    },
                    UnOp::Not => Scalar::Int(i64::from(!v.is_true())),
                });
            }
            Instr::Binary(op) => {
                let b = stack.pop().expect("tape balance");
                let a = stack.pop().expect("tape balance");
                stack.push(eval_binop(*op, a, b));
            }
            Instr::BinRhsVar { op, slot } => {
                let a = stack.pop().expect("tape balance");
                let b = f.scalar(proc, *slot);
                stack.push(eval_binop(*op, a, b));
            }
            Instr::BinRhsConst { op, v } => {
                let a = stack.pop().expect("tape balance");
                stack.push(eval_binop(*op, a, *v));
            }
            Instr::BinRhsHoisted { op, slot } => {
                let a = stack.pop().expect("tape balance");
                let b = f.hoisted[*slot as usize];
                stack.push(eval_binop(*op, a, b));
            }
            Instr::Intrinsic { op, argc, name } => {
                let base = stack.len() - *argc as usize;
                let r = match try_intrinsic(*op, name, &stack[base..]) {
                    Ok(v) => v,
                    Err(msg) => rt_err!("{msg}"),
                };
                stack.truncate(base);
                stack.push(r);
            }
            Instr::LoadArray { slot, argc, name } => {
                let base = stack.len() - *argc as usize;
                idx.clear();
                idx.extend(stack[base..].iter().map(|v| match v {
                    Scalar::Int(i) => *i,
                    Scalar::Real(_) => unreachable!("ExpectIdx converted"),
                }));
                stack.truncate(base);
                match f.array(*slot).get(name, idx) {
                    Ok(v) => stack.push(v),
                    Err(be) => rt_err!("{be}"),
                }
            }
            Instr::StoreScalar { slot, ty } => {
                let v = stack.pop().expect("tape balance");
                f.scalars[*slot as usize] = v.convert_to(*ty);
            }
            Instr::StoreArray { slot, argc, name } => {
                let v = stack.pop().expect("tape balance");
                let base = stack.len() - *argc as usize;
                idx.clear();
                idx.extend(stack[base..].iter().map(|v| match v {
                    Scalar::Int(i) => *i,
                    Scalar::Real(_) => unreachable!("ExpectIdx converted"),
                }));
                stack.truncate(base);
                if let Err(be) = f.array(*slot).set(name, idx, v) {
                    rt_err!("{be}");
                }
            }
            Instr::SetVar { slot, v } => {
                f.scalars[*slot as usize] = Scalar::Int(*v);
            }
            Instr::ChainScalar {
                dst,
                ty,
                first,
                rest,
                mono,
            } => {
                let v = eval_chain_mono(proc, f, first, rest, *mono);
                f.scalars[*dst as usize] = v.convert_to(*ty);
            }
            Instr::ChainArray {
                slot,
                name,
                idxs,
                first,
                rest,
                mono,
            } => {
                // Indices first, value second — `eval_indices` order.
                let mut flat = [0i64; 4];
                let rank = idxs.len();
                debug_assert!(rank <= 4, "chains cover rank <= 4 stores");
                for (d, o) in idxs.iter().enumerate() {
                    flat[d] = fetch_operand(proc, f, o).expect_int("array subscript");
                }
                let v = eval_chain_mono(proc, f, first, rest, *mono);
                if let Err(be) = f.array(*slot).set(name, &flat[..rank], v) {
                    rt_err!("{be}");
                }
            }
            Instr::ErrNotArray { name } => {
                rt_err!("`{name}` is not an array in this scope")
            }
        }
    }
    debug_assert!(stack.is_empty(), "tape leaves a balanced stack");
}

/// Fetch one chain operand — the lean recursive mirror of `eval`: same
/// evaluation order, same runtime errors, no op counting (the block's
/// charge is precomputed), no shared buffers (each load level resolves
/// its subscripts into its own fixed array).
fn fetch_operand(proc: &LProc, f: &LFrame, o: &Operand) -> Scalar {
    match o {
        Operand::Const(v) => *v,
        Operand::Var(slot) => f.scalar(proc, *slot),
        Operand::Hoisted(slot) => f.hoisted[*slot as usize],
        Operand::Load { slot, idxs, name } => {
            let mut flat = [0i64; 8];
            for (d, io) in idxs.iter().enumerate() {
                flat[d] = fetch_operand(proc, f, io).expect_int("array subscript");
            }
            match f.array(*slot).get(name, &flat[..idxs.len()]) {
                Ok(v) => v,
                Err(be) => rt_err!("{be}"),
            }
        }
        Operand::LoadErr { idxs, name } => {
            for io in idxs.iter() {
                fetch_operand(proc, f, io).expect_int("array subscript");
            }
            rt_err!("`{name}` is not an array in this scope")
        }
        Operand::Un { op, operand } => {
            let v = fetch_operand(proc, f, operand);
            match op {
                UnOp::Neg => match v {
                    Scalar::Int(x) => Scalar::Int(-x),
                    Scalar::Real(x) => Scalar::Real(-x),
                },
                UnOp::Not => Scalar::Int(i64::from(!v.is_true())),
            }
        }
        Operand::Bin { op, a, b } => {
            let x = fetch_operand(proc, f, a);
            let y = fetch_operand(proc, f, b);
            eval_binop(*op, x, y)
        }
        Operand::Intr { op, name, args } => {
            let mut vals = [Scalar::Int(0); 8];
            for (i, a) in args.iter().enumerate() {
                vals[i] = fetch_operand(proc, f, a);
            }
            match try_intrinsic(*op, name, &vals[..args.len()]) {
                Ok(v) => v,
                Err(msg) => rt_err!("{msg}"),
            }
        }
    }
}

/// Evaluate a chain: `first`, then each (op, operand) left to right — the
/// tree-walker's exact visit order for a left-leaning binary chain.
#[inline(always)]
fn eval_chain(proc: &LProc, f: &LFrame, first: &Operand, rest: &[(BinOp, Operand)]) -> Scalar {
    let mut acc = fetch_operand(proc, f, first);
    for (op, o) in rest {
        let b = fetch_operand(proc, f, o);
        acc = eval_binop(*op, acc, b);
    }
    acc
}

/// Dispatch on the chain's static monomorphism verdict
/// ([`crate::typeck`]). The typed loops replicate `eval_binop`'s
/// monomorphic arms bit-for-bit; if a fetched tag ever contradicts the
/// static verdict they fall back to the general evaluator (operand
/// fetching is pure, so re-evaluating is safe), making a wrong verdict a
/// performance bug at worst, never a correctness bug.
#[inline(always)]
fn eval_chain_mono(
    proc: &LProc,
    f: &LFrame,
    first: &Operand,
    rest: &[(BinOp, Operand)],
    mono: ChainTy,
) -> Scalar {
    match mono {
        ChainTy::Dyn => eval_chain(proc, f, first, rest),
        ChainTy::Real => eval_chain_real(proc, f, first, rest),
        ChainTy::Int => eval_chain_int(proc, f, first, rest),
    }
}

/// Real-accumulator chain: the verdict guarantees the first operand is
/// real and every operator is `+ - * /`, so after each step the
/// accumulator stays real and `eval_binop` would take the
/// `(Real, Real)`/`(Real, Int)` arms — exactly `acc op b.as_real()`.
#[inline(always)]
fn eval_chain_real(proc: &LProc, f: &LFrame, first: &Operand, rest: &[(BinOp, Operand)]) -> Scalar {
    let Scalar::Real(mut acc) = fetch_operand(proc, f, first) else {
        return eval_chain(proc, f, first, rest);
    };
    for (op, o) in rest {
        let b = fetch_operand(proc, f, o).as_real();
        acc = match op {
            BinOp::Add => acc + b,
            BinOp::Sub => acc - b,
            BinOp::Mul => acc * b,
            BinOp::Div => acc / b,
            _ => unreachable!("Real verdicts carry only + - * / (typeck::chain_mono)"),
        };
    }
    Scalar::Real(acc)
}

/// Integer-accumulator chain: the verdict guarantees every operand is an
/// integer and every operator is `+ - *` — `eval_binop`'s wrapping
/// `(Int, Int)` arms, which cannot error.
#[inline(always)]
fn eval_chain_int(proc: &LProc, f: &LFrame, first: &Operand, rest: &[(BinOp, Operand)]) -> Scalar {
    let Scalar::Int(mut acc) = fetch_operand(proc, f, first) else {
        return eval_chain(proc, f, first, rest);
    };
    for (op, o) in rest {
        let Scalar::Int(b) = fetch_operand(proc, f, o) else {
            return eval_chain(proc, f, first, rest);
        };
        acc = match op {
            BinOp::Add => acc.wrapping_add(b),
            BinOp::Sub => acc.wrapping_sub(b),
            BinOp::Mul => acc.wrapping_mul(b),
            _ => unreachable!("Int verdicts carry only + - * (typeck::chain_mono)"),
        };
    }
    Scalar::Int(acc)
}

/// The hot arithmetic cases, inlined — exactly [`try_binop`]'s semantics
/// for the operators that cannot error (`+ - *` everywhere, `/` once any
/// operand is real); everything else falls through to the shared kernel.
#[inline(always)]
fn eval_binop(op: BinOp, a: Scalar, b: Scalar) -> Scalar {
    use BinOp::*;
    match (a, b) {
        (Scalar::Real(x), Scalar::Real(y)) => match op {
            Add => return Scalar::Real(x + y),
            Sub => return Scalar::Real(x - y),
            Mul => return Scalar::Real(x * y),
            Div => return Scalar::Real(x / y),
            Lt => return Scalar::Int(i64::from(x < y)),
            Le => return Scalar::Int(i64::from(x <= y)),
            Gt => return Scalar::Int(i64::from(x > y)),
            Ge => return Scalar::Int(i64::from(x >= y)),
            Eq => return Scalar::Int(i64::from(x == y)),
            Ne => return Scalar::Int(i64::from(x != y)),
            _ => {}
        },
        (Scalar::Int(x), Scalar::Int(y)) => match op {
            Add => return Scalar::Int(x.wrapping_add(y)),
            Sub => return Scalar::Int(x.wrapping_sub(y)),
            Mul => return Scalar::Int(x.wrapping_mul(y)),
            Lt => return Scalar::Int(i64::from(x < y)),
            Le => return Scalar::Int(i64::from(x <= y)),
            Gt => return Scalar::Int(i64::from(x > y)),
            Ge => return Scalar::Int(i64::from(x >= y)),
            Eq => return Scalar::Int(i64::from(x == y)),
            Ne => return Scalar::Int(i64::from(x != y)),
            _ => {}
        },
        (Scalar::Int(x), Scalar::Real(y)) => match op {
            Add => return Scalar::Real(x as f64 + y),
            Sub => return Scalar::Real(x as f64 - y),
            Mul => return Scalar::Real(x as f64 * y),
            Div => return Scalar::Real(x as f64 / y),
            _ => {}
        },
        (Scalar::Real(x), Scalar::Int(y)) => match op {
            Add => return Scalar::Real(x + y as f64),
            Sub => return Scalar::Real(x - y as f64),
            Mul => return Scalar::Real(x * y as f64),
            Div => return Scalar::Real(x / y as f64),
            _ => {}
        },
    }
    eval_binop_cold(op, a, b)
}

#[cold]
fn eval_binop_cold(op: BinOp, a: Scalar, b: Scalar) -> Scalar {
    match try_binop(op, a, b) {
        Ok(v) => v,
        Err(msg) => rt_err!("{msg}"),
    }
}

/// The binary-operator kernel, shared between the executor and the
/// constant folder ([`crate::opt`]). `Err` carries the runtime-error
/// message (`interp:` prefix added by the executor); the folder simply
/// declines to fold erroring cases, leaving the error to fire at run time
/// exactly as before.
pub(crate) fn try_binop(op: BinOp, a: Scalar, b: Scalar) -> Result<Scalar, String> {
    use BinOp::*;
    let both_int = matches!((a, b), (Scalar::Int(_), Scalar::Int(_)));
    Ok(match op {
        Add | Sub | Mul | Div | Pow => {
            if both_int {
                let (x, y) = (a.truncate_to_int(), b.truncate_to_int());
                match op {
                    Add => Scalar::Int(x.wrapping_add(y)),
                    Sub => Scalar::Int(x.wrapping_sub(y)),
                    Mul => Scalar::Int(x.wrapping_mul(y)),
                    Div => {
                        if y == 0 {
                            return Err("integer division by zero".into());
                        }
                        Scalar::Int(x.wrapping_div(y))
                    }
                    Pow => Scalar::Int(try_int_pow(x, y)?),
                    _ => unreachable!(),
                }
            } else {
                let (x, y) = (a.as_real(), b.as_real());
                Scalar::Real(match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => x / y,
                    Pow => x.powf(y),
                    _ => unreachable!(),
                })
            }
        }
        Eq | Ne | Lt | Le | Gt | Ge => {
            let r = if both_int {
                let (x, y) = (a.truncate_to_int(), b.truncate_to_int());
                match op {
                    Eq => x == y,
                    Ne => x != y,
                    Lt => x < y,
                    Le => x <= y,
                    Gt => x > y,
                    Ge => x >= y,
                    _ => unreachable!(),
                }
            } else {
                let (x, y) = (a.as_real(), b.as_real());
                match op {
                    Eq => x == y,
                    Ne => x != y,
                    Lt => x < y,
                    Le => x <= y,
                    Gt => x > y,
                    Ge => x >= y,
                    _ => unreachable!(),
                }
            };
            Scalar::Int(i64::from(r))
        }
        And => Scalar::Int(i64::from(a.is_true() && b.is_true())),
        Or => Scalar::Int(i64::from(a.is_true() || b.is_true())),
    })
}

/// Fortran integer exponentiation: negative exponents truncate to 0 unless
/// the base is ±1.
fn try_int_pow(base: i64, exp: i64) -> Result<i64, String> {
    if exp >= 0 {
        let mut acc: i64 = 1;
        for _ in 0..exp {
            acc = acc.wrapping_mul(base);
        }
        Ok(acc)
    } else {
        match base {
            1 => Ok(1),
            -1 => {
                if exp % 2 == 0 {
                    Ok(1)
                } else {
                    Ok(-1)
                }
            }
            0 => Err("0 ** negative exponent".into()),
            _ => Ok(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_pow_cases() {
        assert_eq!(try_int_pow(2, 10), Ok(1024));
        assert_eq!(try_int_pow(3, 0), Ok(1));
        assert_eq!(try_int_pow(2, -1), Ok(0));
        assert_eq!(try_int_pow(-1, 3), Ok(-1));
        assert_eq!(try_int_pow(-1, 4), Ok(1));
        assert_eq!(try_int_pow(1, -5), Ok(1));
        assert!(try_int_pow(0, -1).is_err());
    }

    #[test]
    fn binop_integer_semantics() {
        assert_eq!(
            eval_binop(BinOp::Div, Scalar::Int(7), Scalar::Int(2)),
            Scalar::Int(3)
        );
        assert_eq!(
            eval_binop(BinOp::Div, Scalar::Int(-7), Scalar::Int(2)),
            Scalar::Int(-3)
        );
        assert_eq!(
            eval_binop(BinOp::Lt, Scalar::Int(1), Scalar::Int(2)),
            Scalar::Int(1)
        );
    }

    #[test]
    fn binop_promotes_to_real() {
        assert_eq!(
            eval_binop(BinOp::Add, Scalar::Int(1), Scalar::Real(0.5)),
            Scalar::Real(1.5)
        );
        assert_eq!(
            eval_binop(BinOp::Div, Scalar::Real(7.0), Scalar::Int(2)),
            Scalar::Real(3.5)
        );
    }

    #[test]
    fn logical_ops() {
        assert_eq!(
            eval_binop(BinOp::And, Scalar::Int(1), Scalar::Int(0)),
            Scalar::Int(0)
        );
        assert_eq!(
            eval_binop(BinOp::Or, Scalar::Int(1), Scalar::Int(0)),
            Scalar::Int(1)
        );
    }

    #[test]
    fn lowered_frame_defaults_follow_types() {
        let program = fir::parse(
            "program m\n  integer :: n\n  real :: a(2)\n  a(1) = n + x\nend program",
        )
        .unwrap();
        let l = crate::lower::lower(&program);
        let main = &l.procs[l.main];
        let f = LFrame::new(main, 3, 4);
        // Slots 0/1 are mynum/np.
        assert_eq!(f.scalars[0], Scalar::Int(3));
        assert_eq!(f.scalars[1], Scalar::Int(4));
        // `n` is declared integer; `x` is implicit real.
        let n_slot = main
            .scalar_defaults
            .iter()
            .position(|d| *d == Scalar::Int(0))
            .unwrap();
        assert!(n_slot >= 2 || main.scalar_defaults[0] == Scalar::Int(0));
        assert!(main
            .scalar_defaults
            .iter()
            .any(|d| matches!(d, Scalar::Real(r) if *r == 0.0)));
        assert_eq!(main.array_names, vec!["a".to_string()]);
    }
}
