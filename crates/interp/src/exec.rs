//! The tree-walking interpreter: executes one rank's view of a validated
//! mini-Fortran program against a [`clustersim::Comm`] endpoint.
//!
//! Interpreter-detected runtime errors (bounds violations, bad MPI
//! arguments, non-contiguous communication buffers, buffer-reuse hazards)
//! panic with an `interp:` message; the cluster runner converts rank panics
//! into [`clustersim::SimError::RankPanic`].

use crate::cost::Options;
use crate::env::{ArrayHandle, BoundArray, Frame};
use crate::value::{ArrayStorage, Scalar};
use clustersim::{Bytes, Comm, RecvId, SimTime};
use fir::ast::*;
use std::cell::RefCell;
use std::rc::Rc;

macro_rules! rt_err {
    ($($arg:tt)*) => {
        panic!("interp: {}", format!($($arg)*))
    };
}

/// A posted receive's target slice.
struct PendingBuf {
    storage: Rc<RefCell<ArrayStorage>>,
    offset: usize,
    count: usize,
}

/// A sent region that the NIC may still be reading.
struct InflightRegion {
    alloc: usize,
    start: usize,
    end: usize,
    expires: SimTime,
}

pub(crate) struct Interp<'p, 'c> {
    program: &'p Program,
    opts: &'p Options,
    comm: &'c mut Comm,
    pub prints: Vec<String>,
    pending: Vec<(RecvId, PendingBuf)>,
    inflight: Vec<InflightRegion>,
    ops: u64,
}

impl<'p, 'c> Interp<'p, 'c> {
    pub fn new(program: &'p Program, opts: &'p Options, comm: &'c mut Comm) -> Self {
        Interp {
            program,
            opts,
            comm,
            prints: Vec::new(),
            pending: Vec::new(),
            inflight: Vec::new(),
            ops: 0,
        }
    }

    /// Execute the main program; returns its final frame (for array dumps).
    pub fn run_main(&mut self) -> Frame {
        let main = &self.program.main;
        let mut frame = self.fresh_frame();
        self.allocate_locals(main, &mut frame, &[]);
        self.exec_stmts(main, &frame.into_cell(), &main.body)
    }

    fn fresh_frame(&self) -> Frame {
        let mut f = Frame::new();
        f.set_scalar("mynum", Scalar::Int(self.comm.rank() as i64));
        f.set_scalar("np", Scalar::Int(self.comm.np() as i64));
        f
    }

    // -- cost charging -------------------------------------------------------

    fn charge_stmt(&mut self) {
        let c = &self.opts.cost;
        let ns = self.ops as f64 * c.ns_per_op + c.ns_per_stmt;
        self.ops = 0;
        self.comm.advance(ns);
    }

    fn charge_ops_only(&mut self) {
        let ns = self.ops as f64 * self.opts.cost.ns_per_op;
        self.ops = 0;
        self.comm.advance(ns);
    }

    // -- expression evaluation -------------------------------------------------

    fn eval(&mut self, frame: &Frame, e: &Expr) -> Scalar {
        self.ops += 1;
        match e {
            Expr::IntLit(v, _) => Scalar::Int(*v),
            Expr::RealLit(v, _) => Scalar::Real(*v),
            Expr::Var(n, _) => frame.scalar(n),
            Expr::ArrayRef { name, indices, .. } => {
                let idx = self.eval_indices(frame, indices);
                let Some(binding) = frame.array(name) else {
                    rt_err!("`{name}` is not an array in this scope");
                };
                match binding.get(name, &idx) {
                    Ok(v) => v,
                    Err(be) => rt_err!("{be}"),
                }
            }
            Expr::Call { name, args, .. } => self.eval_intrinsic(frame, name, args),
            Expr::Unary { op, operand, .. } => {
                let v = self.eval(frame, operand);
                match op {
                    UnOp::Neg => match v {
                        Scalar::Int(x) => Scalar::Int(-x),
                        Scalar::Real(x) => Scalar::Real(-x),
                    },
                    UnOp::Not => Scalar::Int(i64::from(!v.is_true())),
                }
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let a = self.eval(frame, lhs);
                let b = self.eval(frame, rhs);
                eval_binop(*op, a, b)
            }
        }
    }

    fn eval_indices(&mut self, frame: &Frame, indices: &[Expr]) -> Vec<i64> {
        indices
            .iter()
            .map(|e| self.eval(frame, e).expect_int("array subscript"))
            .collect()
    }

    fn eval_intrinsic(&mut self, frame: &Frame, name: &str, args: &[Expr]) -> Scalar {
        let vals: Vec<Scalar> = args.iter().map(|a| self.eval(frame, a)).collect();
        match name {
            "mod" => {
                let a = vals[0].expect_int("mod argument");
                let b = vals[1].expect_int("mod argument");
                if b == 0 {
                    rt_err!("mod by zero");
                }
                Scalar::Int(a % b) // Fortran MOD: sign of the dividend
            }
            "min" | "max" => {
                let any_real = vals.iter().any(|v| matches!(v, Scalar::Real(_)));
                if any_real {
                    let it = vals.iter().map(|v| v.as_real());
                    let r = if name == "min" {
                        it.fold(f64::INFINITY, f64::min)
                    } else {
                        it.fold(f64::NEG_INFINITY, f64::max)
                    };
                    Scalar::Real(r)
                } else {
                    let it = vals.iter().map(|v| v.truncate_to_int());
                    Scalar::Int(if name == "min" {
                        it.min().expect("arity checked")
                    } else {
                        it.max().expect("arity checked")
                    })
                }
            }
            "abs" => match vals[0] {
                Scalar::Int(v) => Scalar::Int(v.abs()),
                Scalar::Real(v) => Scalar::Real(v.abs()),
            },
            "sqrt" => Scalar::Real(vals[0].as_real().sqrt()),
            "sin" => Scalar::Real(vals[0].as_real().sin()),
            "cos" => Scalar::Real(vals[0].as_real().cos()),
            "exp" => Scalar::Real(vals[0].as_real().exp()),
            "log" => Scalar::Real(vals[0].as_real().ln()),
            "floor" => Scalar::Int(vals[0].as_real().floor() as i64),
            "int" => Scalar::Int(vals[0].truncate_to_int()),
            "real" => Scalar::Real(vals[0].as_real()),
            other => rt_err!("unknown intrinsic `{other}` (validation gap)"),
        }
    }

    // -- statements -------------------------------------------------------------

    fn exec_stmts(&mut self, proc: &'p Procedure, frame: &FrameCell, stmts: &[Stmt]) -> Frame {
        for s in stmts {
            self.exec_stmt(proc, frame, s);
        }
        frame.take()
    }

    fn exec_stmt(&mut self, proc: &'p Procedure, frame: &FrameCell, s: &Stmt) {
        match s {
            Stmt::Assign { target, value, .. } => {
                let (idx, v) = {
                    let f = frame.borrow();
                    let idx = self.eval_indices(&f, &target.indices);
                    let v = self.eval(&f, value);
                    (idx, v)
                };
                self.charge_stmt();
                self.store(proc, frame, target, idx, v);
            }
            Stmt::Do {
                var,
                lower,
                upper,
                step,
                body,
                ..
            } => {
                let (lo, hi, st) = {
                    let f = frame.borrow();
                    let lo = self.eval(&f, lower).expect_int("loop bound");
                    let hi = self.eval(&f, upper).expect_int("loop bound");
                    let st = match step {
                        None => 1,
                        Some(e) => self.eval(&f, e).expect_int("loop step"),
                    };
                    (lo, hi, st)
                };
                if st == 0 {
                    rt_err!("zero loop step in `do {var}`");
                }
                self.charge_stmt();
                let mut i = lo;
                loop {
                    if (st > 0 && i > hi) || (st < 0 && i < hi) {
                        break;
                    }
                    frame.borrow_mut().set_scalar(var, Scalar::Int(i));
                    for b in body {
                        self.exec_stmt(proc, frame, b);
                    }
                    // loop increment + test bookkeeping
                    self.comm.advance(self.opts.cost.ns_per_stmt);
                    i += st;
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let c = {
                    let f = frame.borrow();
                    self.eval(&f, cond)
                };
                self.charge_stmt();
                let body = if c.is_true() { then_body } else { else_body };
                for b in body {
                    self.exec_stmt(proc, frame, b);
                }
            }
            Stmt::Call { name, args, .. } => {
                if fir::intrinsics::is_builtin_sub(name) {
                    self.exec_builtin(frame, name, args);
                } else {
                    self.exec_user_call(frame, name, args);
                }
            }
        }
    }

    fn store(
        &mut self,
        proc: &'p Procedure,
        frame: &FrameCell,
        target: &LValue,
        idx: Vec<i64>,
        v: Scalar,
    ) {
        if target.indices.is_empty() {
            let ty = scalar_ty(proc, &target.name);
            frame
                .borrow_mut()
                .set_scalar(&target.name, v.convert_to(ty));
            return;
        }
        let f = frame.borrow();
        let Some(binding) = f.array(&target.name) else {
            rt_err!("`{}` is not an array in this scope", target.name);
        };
        match binding.set(&target.name, &idx, v) {
            Ok(abs) => {
                if self.opts.detect_buffer_reuse {
                    let alloc = binding.handle.alloc_id();
                    drop(f);
                    self.check_inflight_write(alloc, abs, &target.name);
                }
            }
            Err(be) => rt_err!("{be}"),
        }
    }

    fn check_inflight_write(&mut self, alloc: usize, abs: usize, name: &str) {
        let now = self.comm.now();
        self.inflight.retain(|r| r.expires > now);
        if let Some(r) = self
            .inflight
            .iter()
            .find(|r| r.alloc == alloc && abs >= r.start && abs < r.end)
        {
            rt_err!(
                "buffer-reuse hazard: rank {} overwrote element {} of `{name}` while an \
                 mpi_isend of [{}, {}) is still in flight (drains at {})",
                self.comm.rank(),
                abs,
                r.start,
                r.end,
                r.expires
            );
        }
    }

    // -- procedure calls -----------------------------------------------------------

    fn exec_user_call(&mut self, frame: &FrameCell, name: &str, args: &[Arg]) {
        let Some(callee) = self.program.procedure(name) else {
            rt_err!("call to unknown subroutine `{name}` (validation gap)");
        };
        let mut callee_frame = self.fresh_frame();
        let mut array_args: Vec<(String, ArrayHandle)> = Vec::new();

        for (param, arg) in callee.params.iter().zip(args) {
            match arg {
                Arg::Expr(Expr::Var(n, _)) if frame.borrow().array(n).is_some() => {
                    let f = frame.borrow();
                    let b = f.array(n).expect("checked");
                    let h = b.handle.window(0, b.shape_len());
                    array_args.push((param.name.clone(), h));
                }
                Arg::Section(sec) => {
                    let h = self.resolve_section(frame, sec);
                    array_args.push((param.name.clone(), h));
                }
                Arg::Expr(e) => {
                    let v = {
                        let f = frame.borrow();
                        self.eval(&f, e)
                    };
                    let ty = scalar_ty(callee, &param.name);
                    callee_frame.set_scalar(&param.name, v.convert_to(ty));
                }
            }
        }
        self.charge_ops_only();
        self.comm.advance(self.opts.cost.ns_per_call);

        self.allocate_locals(callee, &mut callee_frame, &array_args);
        let cell = callee_frame.into_cell();
        for s in &callee.body {
            self.exec_stmt(callee, &cell, s);
        }
        // Arrays were by reference; scalar params are by value (documented).
    }

    /// Allocate local arrays and bind array parameters, in declaration
    /// order, evaluating bound expressions in the growing frame.
    fn allocate_locals(
        &mut self,
        proc: &'p Procedure,
        frame: &mut Frame,
        array_args: &[(String, ArrayHandle)],
    ) {
        for decl in &proc.decls {
            if !decl.is_array() {
                // Seed declared scalars with typed zeros (unless a
                // parameter already bound a value), so an `integer :: n`
                // read before assignment yields Int(0), not the implicit
                // rule's guess.
                if frame.scalar_if_set(&decl.name).is_none() {
                    let zero = match decl.ty {
                        ScalarType::Integer => Scalar::Int(0),
                        ScalarType::Real => Scalar::Real(0.0),
                    };
                    frame.set_scalar(&decl.name, zero);
                }
                continue;
            }
            let bounds: Vec<(i64, i64)> = decl
                .dims
                .iter()
                .map(|b| {
                    let lo = self.eval(frame, &b.lower).expect_int("array bound");
                    let hi = self.eval(frame, &b.upper).expect_int("array bound");
                    (lo, hi)
                })
                .collect();
            if let Some((_, handle)) = array_args.iter().find(|(n, _)| *n == decl.name) {
                match BoundArray::from_shape(handle.clone(), bounds) {
                    Ok(b) => frame.define_array(&decl.name, b),
                    Err(msg) => rt_err!(
                        "binding parameter `{}` of `{}`: {msg}",
                        decl.name,
                        proc.name
                    ),
                }
            } else {
                let storage = Rc::new(RefCell::new(ArrayStorage::new(
                    &decl.name,
                    decl.ty,
                    bounds.clone(),
                )));
                let handle = ArrayHandle::whole(storage);
                let b = BoundArray::from_shape(handle, bounds).expect("fresh allocation fits");
                frame.define_array(&decl.name, b);
            }
        }
        self.charge_ops_only();
    }

    // -- builtin (MPI) subroutines -----------------------------------------------

    fn exec_builtin(&mut self, frame: &FrameCell, name: &str, args: &[Arg]) {
        match name {
            "mpi_isend" => self.mpi_isend(frame, args),
            "mpi_irecv" => self.mpi_irecv(frame, args),
            "mpi_waitall_recv" => {
                self.charge_stmt();
                let done = self.comm.wait_all_recvs();
                self.apply_received(done);
            }
            "mpi_waitall" => {
                self.charge_stmt();
                let done = self.comm.wait_all();
                self.apply_received(done);
                self.inflight.clear();
            }
            "mpi_barrier" => {
                self.charge_stmt();
                self.comm.barrier();
            }
            "mpi_alltoall" => self.mpi_alltoall(frame, args),
            "print" => {
                let line = {
                    let f = frame.borrow();
                    args.iter()
                        .map(|a| match a {
                            Arg::Expr(e) => self.eval(&f, e).to_string(),
                            Arg::Section(s) => format!("<section {}>", s.name),
                        })
                        .collect::<Vec<_>>()
                        .join(" ")
                };
                self.charge_ops_only();
                self.prints.push(line);
            }
            other => rt_err!("unknown builtin `{other}` (validation gap)"),
        }
    }

    fn scalar_arg(&mut self, frame: &FrameCell, args: &[Arg], i: usize, what: &str) -> i64 {
        let f = frame.borrow();
        match &args[i] {
            Arg::Expr(e) => self.eval(&f, e).expect_int(what),
            Arg::Section(s) => rt_err!("{what} must be a scalar, got section of `{}`", s.name),
        }
    }

    /// Resolve an MPI buffer argument to a contiguous element window.
    fn resolve_buffer(&mut self, frame: &FrameCell, arg: &Arg, ctx: &str) -> ArrayHandle {
        match arg {
            Arg::Expr(Expr::Var(n, _)) => {
                let f = frame.borrow();
                let Some(b) = f.array(n) else {
                    rt_err!("{ctx}: `{n}` is not an array");
                };
                b.handle.window(0, b.shape_len())
            }
            Arg::Section(sec) => self.resolve_section(frame, sec),
            Arg::Expr(e) => rt_err!(
                "{ctx}: buffer must be an array or section, got expression at {:?}",
                e.span()
            ),
        }
    }

    /// Resolve a section to a contiguous window (column-major rule: all
    /// dims before the last varying one must cover their full extent).
    fn resolve_section(&mut self, frame: &FrameCell, sec: &Section) -> ArrayHandle {
        let f = frame.borrow();
        let Some(binding) = f.array(&sec.name) else {
            rt_err!("section base `{}` is not an array", sec.name);
        };
        if sec.dims.len() != binding.rank() {
            rt_err!(
                "section of `{}` has {} dims, array has rank {}",
                sec.name,
                sec.dims.len(),
                binding.rank()
            );
        }
        let mut lows = Vec::with_capacity(sec.dims.len());
        let mut counts = Vec::with_capacity(sec.dims.len());
        for (d, sd) in sec.dims.iter().enumerate() {
            let (blo, bhi) = binding.bounds()[d];
            let (lo, hi) = match sd {
                SecDim::Index(e) => {
                    let v = self.eval(&f, e).expect_int("section index");
                    (v, v)
                }
                SecDim::Range(a, b) => {
                    let lo = a
                        .as_ref()
                        .map(|e| self.eval(&f, e).expect_int("section bound"))
                        .unwrap_or(blo);
                    let hi = b
                        .as_ref()
                        .map(|e| self.eval(&f, e).expect_int("section bound"))
                        .unwrap_or(bhi);
                    (lo, hi)
                }
            };
            if lo < blo || hi > bhi {
                rt_err!(
                    "section of `{}` dim {}: {}:{} outside declared {}..={}",
                    sec.name,
                    d + 1,
                    lo,
                    hi,
                    blo,
                    bhi
                );
            }
            lows.push(lo);
            counts.push((hi - lo + 1).max(0) as usize);
        }
        let len: usize = counts.iter().product();
        if len == 0 {
            return binding.handle.window(0, 0);
        }
        // Contiguity: dims before the last varying dim must be full extent.
        if let Some(p) = counts.iter().rposition(|&c| c != 1) {
            for (d, &cnt) in counts.iter().enumerate().take(p) {
                if cnt != binding.extent(d) {
                    rt_err!(
                        "section of `{}` is not contiguous: dim {} covers {} of {} elements \
                         while dim {} varies",
                        sec.name,
                        d + 1,
                        counts[d],
                        binding.extent(d),
                        p + 1
                    );
                }
            }
        }
        let offset = match binding.flat(&sec.name, &lows) {
            Ok(o) => o,
            Err(be) => rt_err!("{be}"),
        };
        binding.handle.window(offset, len)
    }

    fn mpi_isend(&mut self, frame: &FrameCell, args: &[Arg]) {
        let buf = self.resolve_buffer(frame, &args[0], "mpi_isend");
        let count = self.scalar_arg(frame, args, 1, "mpi_isend count");
        let dest = self.scalar_arg(frame, args, 2, "mpi_isend dest");
        let tag = self.scalar_arg(frame, args, 3, "mpi_isend tag");
        self.charge_stmt();
        let me = self.comm.rank() as i64;
        let np = self.comm.np() as i64;
        if count < 0 || (count as usize) > buf.len {
            rt_err!(
                "mpi_isend: count {count} exceeds buffer window of {} elements",
                buf.len
            );
        }
        if dest < 0 || dest >= np {
            rt_err!("mpi_isend: dest {dest} out of range 0..{np}");
        }
        if dest == me {
            rt_err!("mpi_isend: self-send (rank {me}); copy locally instead");
        }
        let bytes = {
            let st = buf.storage.borrow();
            Bytes::from(st.encode(buf.offset, count as usize))
        };
        let nic_done = self.comm.isend(dest as usize, tag, bytes);
        if self.opts.detect_buffer_reuse {
            self.inflight.push(InflightRegion {
                alloc: buf.alloc_id(),
                start: buf.offset,
                end: buf.offset + count as usize,
                expires: nic_done,
            });
        }
    }

    fn mpi_irecv(&mut self, frame: &FrameCell, args: &[Arg]) {
        let buf = self.resolve_buffer(frame, &args[0], "mpi_irecv");
        let count = self.scalar_arg(frame, args, 1, "mpi_irecv count");
        let src = self.scalar_arg(frame, args, 2, "mpi_irecv src");
        let tag = self.scalar_arg(frame, args, 3, "mpi_irecv tag");
        self.charge_stmt();
        let me = self.comm.rank() as i64;
        let np = self.comm.np() as i64;
        if count < 0 || (count as usize) > buf.len {
            rt_err!(
                "mpi_irecv: count {count} exceeds buffer window of {} elements",
                buf.len
            );
        }
        if src < 0 || src >= np {
            rt_err!("mpi_irecv: src {src} out of range 0..{np}");
        }
        if src == me {
            rt_err!("mpi_irecv: self-receive (rank {me})");
        }
        let id = self.comm.irecv(src as usize, tag);
        self.pending.push((
            id,
            PendingBuf {
                storage: Rc::clone(&buf.storage),
                offset: buf.offset,
                count: count as usize,
            },
        ));
    }

    fn apply_received(&mut self, done: Vec<(RecvId, Bytes)>) {
        for (id, payload) in done {
            let pos = self
                .pending
                .iter()
                .position(|(pid, _)| *pid == id)
                .unwrap_or_else(|| rt_err!("completed receive with no registered buffer"));
            let (_, buf) = self.pending.remove(pos);
            if payload.len() != buf.count * 8 {
                rt_err!(
                    "mpi receive: expected {} elements ({} bytes), got {} bytes",
                    buf.count,
                    buf.count * 8,
                    payload.len()
                );
            }
            buf.storage
                .borrow_mut()
                .decode_into(buf.offset, payload.as_ref());
        }
    }

    fn mpi_alltoall(&mut self, frame: &FrameCell, args: &[Arg]) {
        let send = self.resolve_buffer(frame, &args[0], "mpi_alltoall send buffer");
        let count = self.scalar_arg(frame, args, 1, "mpi_alltoall count");
        let recv = self.resolve_buffer(frame, &args[2], "mpi_alltoall recv buffer");
        self.charge_stmt();
        let np = self.comm.np();
        if count < 0 {
            rt_err!("mpi_alltoall: negative count {count}");
        }
        let count = count as usize;
        if count * np > send.len {
            rt_err!(
                "mpi_alltoall: need {} elements in send buffer, have {}",
                count * np,
                send.len
            );
        }
        if count * np > recv.len {
            rt_err!(
                "mpi_alltoall: need {} elements in recv buffer, have {}",
                count * np,
                recv.len
            );
        }
        let payloads: Vec<Bytes> = {
            let st = send.storage.borrow();
            (0..np)
                .map(|d| Bytes::from(st.encode(send.offset + d * count, count)))
                .collect()
        };
        let received = self.comm.alltoall(payloads);
        let mut st = recv.storage.borrow_mut();
        for (srcr, payload) in received.into_iter().enumerate() {
            if payload.len() != count * 8 {
                rt_err!(
                    "mpi_alltoall: partner {srcr} sent {} bytes, expected {}",
                    payload.len(),
                    count * 8
                );
            }
            st.decode_into(recv.offset + srcr * count, payload.as_ref());
        }
    }
}

/// Static scalar type of a name in a procedure (declared, or implicit).
fn scalar_ty(proc: &Procedure, name: &str) -> ScalarType {
    match proc.decl(name) {
        Some(d) => d.ty,
        None => fir::symbol::implicit_type(name),
    }
}

/// Interior-mutable frame wrapper: statements need `&mut Frame` for scalar
/// stores while expression evaluation holds shared borrows.
pub(crate) struct FrameCell(RefCell<Frame>);

impl FrameCell {
    fn borrow(&self) -> std::cell::Ref<'_, Frame> {
        self.0.borrow()
    }

    fn borrow_mut(&self) -> std::cell::RefMut<'_, Frame> {
        self.0.borrow_mut()
    }

    fn take(&self) -> Frame {
        self.0.replace(Frame::new())
    }
}

pub(crate) trait IntoCell {
    fn into_cell(self) -> FrameCell;
}

impl IntoCell for Frame {
    fn into_cell(self) -> FrameCell {
        FrameCell(RefCell::new(self))
    }
}

fn eval_binop(op: BinOp, a: Scalar, b: Scalar) -> Scalar {
    use BinOp::*;
    let both_int = matches!((a, b), (Scalar::Int(_), Scalar::Int(_)));
    match op {
        Add | Sub | Mul | Div | Pow => {
            if both_int {
                let (x, y) = (a.truncate_to_int(), b.truncate_to_int());
                match op {
                    Add => Scalar::Int(x.wrapping_add(y)),
                    Sub => Scalar::Int(x.wrapping_sub(y)),
                    Mul => Scalar::Int(x.wrapping_mul(y)),
                    Div => {
                        if y == 0 {
                            rt_err!("integer division by zero");
                        }
                        Scalar::Int(x.wrapping_div(y))
                    }
                    Pow => Scalar::Int(int_pow(x, y)),
                    _ => unreachable!(),
                }
            } else {
                let (x, y) = (a.as_real(), b.as_real());
                Scalar::Real(match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => x / y,
                    Pow => x.powf(y),
                    _ => unreachable!(),
                })
            }
        }
        Eq | Ne | Lt | Le | Gt | Ge => {
            let r = if both_int {
                let (x, y) = (a.truncate_to_int(), b.truncate_to_int());
                match op {
                    Eq => x == y,
                    Ne => x != y,
                    Lt => x < y,
                    Le => x <= y,
                    Gt => x > y,
                    Ge => x >= y,
                    _ => unreachable!(),
                }
            } else {
                let (x, y) = (a.as_real(), b.as_real());
                match op {
                    Eq => x == y,
                    Ne => x != y,
                    Lt => x < y,
                    Le => x <= y,
                    Gt => x > y,
                    Ge => x >= y,
                    _ => unreachable!(),
                }
            };
            Scalar::Int(i64::from(r))
        }
        And => Scalar::Int(i64::from(a.is_true() && b.is_true())),
        Or => Scalar::Int(i64::from(a.is_true() || b.is_true())),
    }
}

/// Fortran integer exponentiation: negative exponents truncate to 0 unless
/// the base is ±1.
fn int_pow(base: i64, exp: i64) -> i64 {
    if exp >= 0 {
        let mut acc: i64 = 1;
        for _ in 0..exp {
            acc = acc.wrapping_mul(base);
        }
        acc
    } else {
        match base {
            1 => 1,
            -1 => {
                if exp % 2 == 0 {
                    1
                } else {
                    -1
                }
            }
            0 => rt_err!("0 ** negative exponent"),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_pow_cases() {
        assert_eq!(int_pow(2, 10), 1024);
        assert_eq!(int_pow(3, 0), 1);
        assert_eq!(int_pow(2, -1), 0);
        assert_eq!(int_pow(-1, 3), -1);
        assert_eq!(int_pow(-1, 4), 1);
        assert_eq!(int_pow(1, -5), 1);
    }

    #[test]
    fn binop_integer_semantics() {
        assert_eq!(
            eval_binop(BinOp::Div, Scalar::Int(7), Scalar::Int(2)),
            Scalar::Int(3)
        );
        assert_eq!(
            eval_binop(BinOp::Div, Scalar::Int(-7), Scalar::Int(2)),
            Scalar::Int(-3)
        );
        assert_eq!(
            eval_binop(BinOp::Lt, Scalar::Int(1), Scalar::Int(2)),
            Scalar::Int(1)
        );
    }

    #[test]
    fn binop_promotes_to_real() {
        assert_eq!(
            eval_binop(BinOp::Add, Scalar::Int(1), Scalar::Real(0.5)),
            Scalar::Real(1.5)
        );
        assert_eq!(
            eval_binop(BinOp::Div, Scalar::Real(7.0), Scalar::Int(2)),
            Scalar::Real(3.5)
        );
    }

    #[test]
    fn logical_ops() {
        assert_eq!(
            eval_binop(BinOp::And, Scalar::Int(1), Scalar::Int(0)),
            Scalar::Int(0)
        );
        assert_eq!(
            eval_binop(BinOp::Or, Scalar::Int(1), Scalar::Int(0)),
            Scalar::Int(1)
        );
    }
}
