//! # interp — execute mini-Fortran programs on the simulated cluster
//!
//! The reproduction's stand-in for "compile with mpif90 and run on the
//! cluster": a tree-walking interpreter where every rank of a
//! [`clustersim::Cluster`] executes the same program (SPMD), with real data
//! movement through the simulated network. One run yields both
//!
//! - **correctness evidence** — final array contents per rank
//!   ([`RunResult::outputs`]), compared between original and transformed
//!   programs exactly like the paper's §4 evaluation compared program
//!   outputs; and
//! - **performance evidence** — the virtual-time [`clustersim::Report`]
//!   (makespan, compute/comm-CPU/blocked split) that regenerates Figure 1.
//!
//! Fortran semantics implemented: column-major arrays with declared bounds,
//! by-reference array arguments including *sequence association* for
//! section arguments (the indirect pattern's `call p(..., at(1, j))` needs
//! it), integer truncation on store, implicit typing for undeclared
//! scalars, and `do`-loop trip semantics with steps.

pub mod cost;
pub mod env;
mod exec;
mod lower;
mod machine;
mod opt;
pub mod run;
pub mod typeck;
pub mod value;

pub use cost::{CostModel, Options};
pub use typeck::analyze_types;
pub use run::{
    compile_program, run_program, run_program_opts, run_source, ArrayDump, CompiledProgram,
    RankOutput, RunError, RunResult,
};
pub use value::{ArrayStorage, Data, Scalar};
