//! Lowering: resolve a validated AST to a slot-indexed program, once,
//! before any rank executes it.
//!
//! The tree-walking executor used to clone `String` names and do `HashMap`
//! lookups on **every** variable access, per rank, per iteration. This pass
//! interns every name into a per-procedure *slot* (a dense `u32` index into
//! the frame's scalar / array vectors), resolves user calls to procedure
//! indices, and intrinsics/builtins to enums — so the execute loop is pure
//! `Vec` indexing. One lowered program is shared read-only by all ranks.
//!
//! **Timing parity invariant:** the lowered tree is node-for-node
//! isomorphic to the AST, and the executor charges exactly one `op` per
//! lowered expression node, mirroring the historical `eval`. Virtual times
//! are therefore byte-identical to the pre-lowering interpreter — pinned by
//! the golden/differential suites.

use crate::value::Scalar;
use fir::ast::*;
use fir::span::Span;
use std::collections::HashMap;

/// Program-wide procedure index: name -> (procedure index, AST node).
struct ProcIndex<'p> {
    by_name: HashMap<&'p str, usize>,
    procs: Vec<&'p Procedure>,
}

/// A lowered program: procedures by index, `main` last-resolved.
pub(crate) struct LProgram {
    pub procs: Vec<LProc>,
    pub main: usize,
}

/// One lowered procedure.
pub(crate) struct LProc {
    pub name: String,
    /// Typed zero per scalar slot (declared type, else the implicit rule) —
    /// reads of never-written slots return this, replicating Fortran's
    /// deterministic-zero convention documented in DESIGN.md.
    pub scalar_defaults: Vec<Scalar>,
    /// Scalar slot -> source name (type reports, debugging).
    pub scalar_names: Vec<String>,
    /// Array slot -> source name (error messages, output dumps).
    pub array_names: Vec<String>,
    /// Array allocations/bindings, in declaration order.
    pub array_decls: Vec<LArrayDecl>,
    /// Number of parameters (caller builds one handle slot per param).
    pub nparams: usize,
    /// Number of loop-invariant hoist slots [`crate::opt`] allocated for
    /// this procedure (0 until the opt pass runs).
    pub hoist_slots: usize,
    pub body: Vec<LStmt>,
}

/// An array declaration: allocate fresh storage, or — when `param` names a
/// parameter position — overlay the declared shape onto the caller-passed
/// window (Fortran sequence association).
pub(crate) struct LArrayDecl {
    pub slot: u32,
    pub name: String,
    pub ty: ScalarType,
    pub dims: Vec<(LExpr, LExpr)>,
    pub param: Option<usize>,
}

#[derive(Debug, Clone)]
pub(crate) enum LExpr {
    Int(i64),
    Real(f64),
    Var(u32),
    /// A constant-folded subtree ([`crate::opt`]). Evaluates to `v` but
    /// still charges the folded subtree's historical node count `ops`, so
    /// virtual times stay byte-identical to the unfolded tree.
    Const { v: Scalar, ops: u32 },
    /// A loop-hoisted subtree ([`crate::opt`]): reads the value cached in
    /// the frame's hoist slot at loop entry, charging the replaced
    /// subtree's historical node count `ops` — the tree-walker evaluated
    /// it on every iteration, so the charge stays per-use.
    Hoisted { slot: u32, ops: u32 },
    /// `slot` is `None` when the name is not an array in this scope — the
    /// executor reports the same runtime error the tree-walker did.
    ArrayRef {
        slot: Option<u32>,
        name: String,
        indices: Vec<LExpr>,
    },
    Intrinsic {
        op: Intr,
        name: String,
        args: Vec<LExpr>,
    },
    Unary {
        op: UnOp,
        operand: Box<LExpr>,
    },
    Binary {
        op: BinOp,
        lhs: Box<LExpr>,
        rhs: Box<LExpr>,
    },
}

/// Intrinsic functions, resolved at lowering time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Intr {
    Mod,
    Min,
    Max,
    Abs,
    Sqrt,
    Sin,
    Cos,
    Exp,
    Log,
    Floor,
    Int,
    Real,
    /// Unknown name (validation gap) — runtime error, like the tree-walker.
    Unknown,
}

fn intr_of(name: &str) -> Intr {
    match name {
        "mod" => Intr::Mod,
        "min" => Intr::Min,
        "max" => Intr::Max,
        "abs" => Intr::Abs,
        "sqrt" => Intr::Sqrt,
        "sin" => Intr::Sin,
        "cos" => Intr::Cos,
        "exp" => Intr::Exp,
        "log" => Intr::Log,
        "floor" => Intr::Floor,
        "int" => Intr::Int,
        "real" => Intr::Real,
        _ => Intr::Unknown,
    }
}

/// A section argument (`a(1:n, j)`), slot-resolved.
#[derive(Debug, Clone)]
pub(crate) struct LSection {
    /// `None` when the base name is not an array in this scope.
    pub slot: Option<u32>,
    pub name: String,
    pub dims: Vec<LSecDim>,
}

#[derive(Debug, Clone)]
pub(crate) enum LSecDim {
    Index(LExpr),
    Range(Option<LExpr>, Option<LExpr>),
}

/// How a builtin argument resolves when used as a communication buffer.
#[derive(Debug, Clone)]
pub(crate) enum BufferKind {
    /// `Var(n)` where `n` is an array: the whole-array window.
    Array(u32),
    /// `Var(n)` where `n` is not an array.
    NotArray,
    /// Any other expression — never a legal buffer.
    NotAVar(Span),
}

/// Builtin-call argument: an expression (with its buffer resolution, since
/// the same argument can be read as a buffer *or* a scalar depending on
/// position) or a section.
#[derive(Debug, Clone)]
pub(crate) enum LArg {
    Expr {
        expr: LExpr,
        name: String,
        buffer: BufferKind,
    },
    Section(LSection),
}

/// User-call argument plan.
#[derive(Debug, Clone)]
pub(crate) enum LCallArg {
    /// `Var(n)` where `n` is an array in the caller: pass by reference.
    Array { caller_slot: u32 },
    Section(LSection),
    /// Scalar by value into the callee's slot, converted to its type.
    Scalar {
        expr: LExpr,
        callee_slot: u32,
        ty: ScalarType,
    },
}

/// Builtin subroutines, resolved at lowering time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Builtin {
    Isend,
    Irecv,
    WaitallRecv,
    Waitall,
    Barrier,
    Alltoall,
    Print,
    /// `is_builtin_sub` said yes but the executor has no implementation —
    /// kept as a runtime error for parity.
    Unknown,
}

/// A loop-invariant computation cached at loop entry ([`crate::opt`]).
#[derive(Debug, Clone)]
pub(crate) struct Hoist {
    pub slot: u32,
    pub expr: LExpr,
}

#[derive(Debug, Clone)]
pub(crate) enum LStmt {
    AssignScalar {
        slot: u32,
        ty: ScalarType,
        value: LExpr,
    },
    AssignArray {
        /// `None`: not an array in this scope (runtime error, as before).
        slot: Option<u32>,
        name: String,
        indices: Vec<LExpr>,
        value: LExpr,
    },
    Do {
        var: u32,
        lower: LExpr,
        upper: LExpr,
        step: Option<LExpr>,
        var_name: String,
        body: Vec<LStmt>,
        /// Loop-invariant subtrees cached (uncharged) at loop entry.
        hoists: Vec<Hoist>,
        /// When the whole body is one summarized [`LStmt::Block`], the
        /// precomputed per-iteration charge: the block's statement charges
        /// plus the loop's own increment/test bookkeeping, already rounded
        /// per statement to integer nanoseconds so one add per iteration
        /// reproduces the tree-walker's clock exactly.
        iter_charge: Option<u64>,
    },
    /// A straight-line run of assignment statements (no communication,
    /// branch, call, or loop) whose cost is charged in one precomputed add
    /// instead of per statement ([`crate::opt`]). `charge` is the sum of
    /// the per-statement rounded charges the tree-walker would have made;
    /// `code` is the flat postfix compilation of `stmts` the executor
    /// actually runs (same evaluation order, no recursion).
    Block {
        /// The statements the tape was compiled from — the executor runs
        /// `code`, but the structured form is what the opt unit tests (and
        /// anyone debugging a tape) inspect.
        #[allow(dead_code)]
        stmts: Vec<LStmt>,
        code: Vec<Instr>,
        charge: u64,
    },
    /// An unrolled loop's per-iteration head ([`crate::opt`]): store the
    /// loop variable and account the iteration's bookkeeping (plus, on the
    /// first iteration, the loop's bound-evaluation charge) inside the
    /// enclosing block's summarized total. Never appears outside a block.
    SetVar { slot: u32, v: i64, charge: u64 },
    If {
        cond: LExpr,
        then_body: Vec<LStmt>,
        else_body: Vec<LStmt>,
    },
    CallUser {
        proc: usize,
        args: Vec<LCallArg>,
    },
    CallUnknown {
        name: String,
    },
    CallBuiltin {
        op: Builtin,
        name: String,
        args: Vec<LArg>,
    },
}

/// One instruction of a summarized block's flat postfix tape
/// ([`crate::opt`] compiles, the executor runs). Evaluation order — and
/// therefore the order and text of any runtime error — is exactly the
/// tree-walker's post-order walk; costs are not tracked here because the
/// block's total charge is precomputed.
#[derive(Debug, Clone)]
pub(crate) enum Instr {
    PushInt(i64),
    PushReal(f64),
    PushConst(Scalar),
    PushVar(u32),
    PushHoisted(u32),
    /// Convert the just-pushed subscript to an integer (the tree-walker's
    /// `expect_int("array subscript")`, applied per index as evaluated).
    ExpectIdx,
    Unary(UnOp),
    Binary(BinOp),
    /// Peephole fusions of a leaf push followed by `Binary` (the leaf is
    /// the right operand) or by `ExpectIdx` — one dispatch instead of two.
    BinRhsVar {
        op: BinOp,
        slot: u32,
    },
    BinRhsConst {
        op: BinOp,
        v: Scalar,
    },
    BinRhsHoisted {
        op: BinOp,
        slot: u32,
    },
    PushIdxVar(u32),
    Intrinsic {
        op: Intr,
        argc: u16,
        name: Box<str>,
    },
    /// Pop `argc` integer indices, load the element.
    LoadArray {
        slot: u32,
        argc: u16,
        name: Box<str>,
    },
    /// Pop the value, convert, store into a scalar slot.
    StoreScalar {
        slot: u32,
        ty: ScalarType,
    },
    /// Pop the value, then `argc` integer indices, store the element.
    StoreArray {
        slot: u32,
        argc: u16,
        name: Box<str>,
    },
    /// Store the unrolled loop variable ([`LStmt::SetVar`]).
    SetVar {
        slot: u32,
        v: i64,
    },
    /// A whole `x = a op b op c …` assignment as ONE instruction: a
    /// left-leaning binary chain whose right operands are all leaves (or
    /// single element loads), evaluated by an internal well-predicted
    /// loop instead of one dispatched instruction per node. Evaluation
    /// order is the tree-walker's exactly: first, then each (op, operand)
    /// left to right. `mono` is the static type-inference verdict
    /// ([`crate::typeck`]): a monomorphic chain runs a typed accumulator
    /// loop that skips the per-operation value-tag dispatch.
    ChainScalar {
        dst: u32,
        ty: ScalarType,
        first: Operand,
        rest: Box<[(BinOp, Operand)]>,
        mono: ChainTy,
    },
    /// `a(i, j, …) = chain` as one instruction; `idxs` (all leaves)
    /// evaluate first, like the tree-walker's `eval_indices`.
    ChainArray {
        slot: u32,
        name: Box<str>,
        idxs: Box<[Operand]>,
        first: Operand,
        rest: Box<[(BinOp, Operand)]>,
        mono: ChainTy,
    },
    /// The "`name` is not an array in this scope" runtime error, after its
    /// operands evaluated (parity with the tree-walker's check order).
    ErrNotArray {
        name: Box<str>,
    },
}

/// Static monomorphism verdict for one chain instruction, computed by
/// [`crate::typeck`] from the slot-level type lattice
/// ([`analyzer::types`]). `Dyn` keeps the general tag-dispatching
/// evaluator; `Int`/`Real` run a typed accumulator loop whose arithmetic
/// is bit-for-bit the corresponding `eval_binop` arms — virtual times are
/// unaffected either way because block charges are precomputed
/// (DESIGN.md §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChainTy {
    Dyn,
    Int,
    Real,
}

/// A chain-instruction operand: an expression evaluated by the lean
/// recursive fetcher (`exec::fetch_operand`) — a 1:1 image of [`LExpr`]
/// minus names/weights, so evaluation order and every runtime error are
/// the tree-walker's exactly, without op counting or `Option` frames.
#[derive(Debug, Clone)]
pub(crate) enum Operand {
    Const(Scalar),
    Var(u32),
    Hoisted(u32),
    /// One array element; subscripts convert to integers as evaluated
    /// (`eval_indices` order). Rank ≤ 8 enforced at compile time.
    Load {
        slot: u32,
        idxs: Box<[Operand]>,
        name: Box<str>,
    },
    /// `ArrayRef` whose name is not an array here: evaluate the
    /// subscripts, then raise the tree-walker's error.
    LoadErr {
        idxs: Box<[Operand]>,
        name: Box<str>,
    },
    Un {
        op: UnOp,
        operand: Box<Operand>,
    },
    Bin {
        op: BinOp,
        a: Box<Operand>,
        b: Box<Operand>,
    },
    /// Intrinsic call; arity ≤ 8 enforced at compile time.
    Intr {
        op: Intr,
        name: Box<str>,
        args: Box<[Operand]>,
    },
}

/// Per-procedure name resolution state.
struct Scope<'p> {
    proc: &'p Procedure,
    scalar_slots: HashMap<String, u32>,
    scalar_names: Vec<String>,
    array_slots: HashMap<String, u32>,
    array_names: Vec<String>,
}

impl<'p> Scope<'p> {
    fn new(proc: &'p Procedure) -> Self {
        let mut s = Scope {
            proc,
            scalar_slots: HashMap::new(),
            scalar_names: Vec::new(),
            array_slots: HashMap::new(),
            array_names: Vec::new(),
        };
        // `mynum` / `np` are predefined in every frame (slots 0 and 1).
        s.scalar_slot("mynum");
        s.scalar_slot("np");
        // Arrays are exactly the declared-with-dims names, in decl order.
        for d in &proc.decls {
            if d.is_array() {
                let slot = s.array_names.len() as u32;
                s.array_slots.insert(d.name.clone(), slot);
                s.array_names.push(d.name.clone());
            }
        }
        s
    }

    fn scalar_slot(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.scalar_slots.get(name) {
            return i;
        }
        let i = self.scalar_names.len() as u32;
        self.scalar_slots.insert(name.to_string(), i);
        self.scalar_names.push(name.to_string());
        i
    }

    fn array_slot(&self, name: &str) -> Option<u32> {
        self.array_slots.get(name).copied()
    }

    /// Static scalar type of a name (declared, or implicit) — the same
    /// rule the tree-walker applied per store.
    fn scalar_ty(&self, name: &str) -> ScalarType {
        match self.proc.decl(name) {
            Some(d) if !d.is_array() => d.ty,
            _ => fir::symbol::implicit_type(name),
        }
    }
}

/// Lower a validated program. Call sites referencing unknown procedures or
/// intrinsics lower to runtime-error nodes (parity with the tree-walker's
/// "validation gap" panics).
pub(crate) fn lower(program: &Program) -> LProgram {
    // Procedure name -> index; `main` goes last.
    let mut order: Vec<&Procedure> = program.procedures.iter().collect();
    order.push(&program.main);
    let index = ProcIndex {
        by_name: order
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.as_str(), i))
            .collect(),
        procs: order.clone(),
    };

    let procs: Vec<LProc> = order.iter().map(|p| lower_proc(p, &index)).collect();
    LProgram {
        main: procs.len() - 1,
        procs,
    }
}

/// The scalar slot the callee's own `Scope` will assign to parameter
/// `param_idx` — reproduced here because procedures lower independently.
/// `Scope::new` pre-interns `mynum` (0) and `np` (1), then parameters
/// intern in order with get-or-insert semantics.
fn callee_param_slot(callee: &Procedure, param_idx: usize) -> u32 {
    let mut names: Vec<&str> = vec!["mynum", "np"];
    let mut slot = 0u32;
    for (i, p) in callee.params.iter().enumerate() {
        let s = match names.iter().position(|n| *n == p.name) {
            Some(pos) => pos as u32,
            None => {
                names.push(p.name.as_str());
                (names.len() - 1) as u32
            }
        };
        if i == param_idx {
            slot = s;
            break;
        }
    }
    slot
}

/// Static scalar type of `name` inside `proc` (declared, or implicit).
fn proc_scalar_ty(proc: &Procedure, name: &str) -> ScalarType {
    match proc.decl(name) {
        Some(d) if !d.is_array() => d.ty,
        _ => fir::symbol::implicit_type(name),
    }
}

fn lower_proc(proc: &Procedure, index: &ProcIndex) -> LProc {
    let mut scope = Scope::new(proc);
    // Parameters get scalar slots up front (callers bind by-value scalars
    // into them before the body runs).
    for (i, p) in proc.params.iter().enumerate() {
        let slot = scope.scalar_slot(&p.name);
        // `callee_param_slot` re-derives this assignment at every call
        // site (procedures lower independently); keep the two algorithms
        // provably in lockstep.
        debug_assert_eq!(
            slot,
            callee_param_slot(proc, i),
            "param slot derivation diverged for `{}` param {i} (`{}`)",
            proc.name,
            p.name
        );
    }

    let array_decls: Vec<LArrayDecl> = proc
        .decls
        .iter()
        .filter(|d| d.is_array())
        .map(|d| LArrayDecl {
            slot: scope.array_slot(&d.name).expect("registered in Scope::new"),
            name: d.name.clone(),
            ty: d.ty,
            dims: d
                .dims
                .iter()
                .map(|b| {
                    (
                        lower_expr(&b.lower, &mut scope),
                        lower_expr(&b.upper, &mut scope),
                    )
                })
                .collect(),
            param: proc.params.iter().position(|p| p.name == d.name),
        })
        .collect();

    let body = lower_stmts(&proc.body, &mut scope, index);

    let scalar_defaults = scope
        .scalar_names
        .iter()
        .map(|n| match scope.scalar_ty(n) {
            ScalarType::Integer => Scalar::Int(0),
            ScalarType::Real => Scalar::Real(0.0),
        })
        .collect();
    LProc {
        name: proc.name.clone(),
        scalar_defaults,
        scalar_names: scope.scalar_names,
        array_names: scope.array_names,
        array_decls,
        nparams: proc.params.len(),
        hoist_slots: 0,
        body,
    }
}

fn lower_stmts(stmts: &[Stmt], scope: &mut Scope, index: &ProcIndex) -> Vec<LStmt> {
    stmts.iter().map(|s| lower_stmt(s, scope, index)).collect()
}

fn lower_stmt(s: &Stmt, scope: &mut Scope, index: &ProcIndex) -> LStmt {
    match s {
        Stmt::Assign { target, value, .. } => {
            let value = lower_expr(value, scope);
            if target.indices.is_empty() {
                LStmt::AssignScalar {
                    slot: scope.scalar_slot(&target.name),
                    ty: scope.scalar_ty(&target.name),
                    value,
                }
            } else {
                LStmt::AssignArray {
                    slot: scope.array_slot(&target.name),
                    name: target.name.clone(),
                    indices: target
                        .indices
                        .iter()
                        .map(|e| lower_expr(e, scope))
                        .collect(),
                    value,
                }
            }
        }
        Stmt::Do {
            var,
            lower,
            upper,
            step,
            body,
            ..
        } => LStmt::Do {
            var: scope.scalar_slot(var),
            lower: lower_expr(lower, scope),
            upper: lower_expr(upper, scope),
            step: step.as_ref().map(|e| lower_expr(e, scope)),
            var_name: var.clone(),
            body: lower_stmts(body, scope, index),
            hoists: Vec::new(),
            iter_charge: None,
        },
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => LStmt::If {
            cond: lower_expr(cond, scope),
            then_body: lower_stmts(then_body, scope, index),
            else_body: lower_stmts(else_body, scope, index),
        },
        Stmt::Call { name, args, .. } => {
            if fir::intrinsics::is_builtin_sub(name) {
                let op = match name.as_str() {
                    "mpi_isend" => Builtin::Isend,
                    "mpi_irecv" => Builtin::Irecv,
                    "mpi_waitall_recv" => Builtin::WaitallRecv,
                    "mpi_waitall" => Builtin::Waitall,
                    "mpi_barrier" => Builtin::Barrier,
                    "mpi_alltoall" => Builtin::Alltoall,
                    "print" => Builtin::Print,
                    _ => Builtin::Unknown,
                };
                LStmt::CallBuiltin {
                    op,
                    name: name.clone(),
                    args: args.iter().map(|a| lower_arg(a, scope)).collect(),
                }
            } else {
                match index.by_name.get(name.as_str()) {
                    None => LStmt::CallUnknown { name: name.clone() },
                    Some(&proc_idx) => LStmt::CallUser {
                        proc: proc_idx,
                        args: lower_call_args(index.procs[proc_idx], args, scope),
                    },
                }
            }
        }
    }
}

/// Lower user-call arguments against the callee's parameter list. Mirrors
/// the tree-walker's `params.iter().zip(args)`: extra arguments are
/// ignored, missing ones leave parameters unbound.
fn lower_call_args(callee: &Procedure, args: &[Arg], scope: &mut Scope) -> Vec<LCallArg> {
    callee
        .params
        .iter()
        .enumerate()
        .zip(args)
        .map(|((pi, param), arg)| match arg {
            Arg::Expr(Expr::Var(n, _)) if scope.array_slot(n).is_some() => LCallArg::Array {
                caller_slot: scope.array_slot(n).expect("just checked"),
            },
            Arg::Section(sec) => LCallArg::Section(lower_section(sec, scope)),
            Arg::Expr(e) => LCallArg::Scalar {
                expr: lower_expr(e, scope),
                callee_slot: callee_param_slot(callee, pi),
                ty: proc_scalar_ty(callee, &param.name),
            },
        })
        .collect()
}

fn lower_expr(e: &Expr, scope: &mut Scope) -> LExpr {
    match e {
        Expr::IntLit(v, _) => LExpr::Int(*v),
        Expr::RealLit(v, _) => LExpr::Real(*v),
        Expr::Var(n, _) => LExpr::Var(scope.scalar_slot(n)),
        Expr::ArrayRef { name, indices, .. } => LExpr::ArrayRef {
            slot: scope.array_slot(name),
            name: name.clone(),
            indices: indices.iter().map(|i| lower_expr(i, scope)).collect(),
        },
        Expr::Call { name, args, .. } => LExpr::Intrinsic {
            op: intr_of(name),
            name: name.clone(),
            args: args.iter().map(|a| lower_expr(a, scope)).collect(),
        },
        Expr::Unary { op, operand, .. } => LExpr::Unary {
            op: *op,
            operand: Box::new(lower_expr(operand, scope)),
        },
        Expr::Binary { op, lhs, rhs, .. } => LExpr::Binary {
            op: *op,
            lhs: Box::new(lower_expr(lhs, scope)),
            rhs: Box::new(lower_expr(rhs, scope)),
        },
    }
}

fn lower_section(sec: &Section, scope: &mut Scope) -> LSection {
    LSection {
        slot: scope.array_slot(&sec.name),
        name: sec.name.clone(),
        dims: sec
            .dims
            .iter()
            .map(|d| match d {
                SecDim::Index(e) => LSecDim::Index(lower_expr(e, scope)),
                SecDim::Range(a, b) => LSecDim::Range(
                    a.as_ref().map(|e| lower_expr(e, scope)),
                    b.as_ref().map(|e| lower_expr(e, scope)),
                ),
            })
            .collect(),
    }
}

fn lower_arg(a: &Arg, scope: &mut Scope) -> LArg {
    match a {
        Arg::Section(sec) => LArg::Section(lower_section(sec, scope)),
        Arg::Expr(e) => {
            let buffer = match e {
                Expr::Var(n, _) => match scope.array_slot(n) {
                    Some(slot) => BufferKind::Array(slot),
                    None => BufferKind::NotArray,
                },
                other => BufferKind::NotAVar(other.span()),
            };
            let name = match e {
                Expr::Var(n, _) => n.clone(),
                _ => String::new(),
            };
            LArg::Expr {
                expr: lower_expr(e, scope),
                name,
                buffer,
            }
        }
    }
}
