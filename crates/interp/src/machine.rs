//! The resumable rank machine: one rank's execution as an explicit state
//! machine over the slot-indexed executor ([`crate::exec`]).
//!
//! A rank may block at exactly four statement-level builtins —
//! `mpi_waitall_recv`, `mpi_waitall`, `mpi_barrier`, `mpi_alltoall` — so
//! those are the only suspension points. Everything else (assignments,
//! summarized blocks, `mpi_isend`/`mpi_irecv` posting, prints) delegates
//! wholesale to the recursive [`Interp`], which cannot block; reusing the
//! same code paths is what makes byte-identity with the thread-per-rank
//! engine free by construction rather than something to re-verify.
//!
//! Control flow that may *contain* a blocking statement (`if` bodies,
//! slow-path `do` loops, user-procedure calls) is modelled as an explicit
//! continuation stack ([`Cont`]) so the machine can return to the host
//! worker mid-program and be resumed later — the "parked frame" of
//! DESIGN.md §3. The summarized `do` fast path runs inline: its body is a
//! single straight-line block with no calls, so it can never suspend.
//!
//! ## Determinism
//!
//! Suspension replays nothing and skips nothing: each blocking builtin
//! charges, evaluates, encodes, and registers exactly once at first
//! encounter (the `begin` half), and the parked [`Wait`] holds only what
//! the completion half needs. The rank's virtual clock is untouched while
//! parked — `Comm`'s poll methods only advance it on success, by the same
//! arithmetic the blocking calls use — so host-side resume order cannot
//! leak into any virtual time (argument in DESIGN.md §3).

use crate::cost::Options;
use crate::env::ArrayHandle;
use crate::exec::{FrameCell, Interp};
use crate::lower::{Builtin, LProc, LProgram, LStmt};
use crate::run::{rank_output, RankOutput};
use crate::value::Scalar;
use clustersim::{Comm, RankMachine, Step};
use std::rc::Rc;

/// One saved control-flow frame.
enum Cont<'p> {
    /// A statement list being executed in `frame`; `next` indexes the
    /// statement to run when this frame is on top.
    Body {
        proc: &'p LProc,
        frame: Rc<FrameCell>,
        stmts: &'p [LStmt],
        next: usize,
    },
    /// A slow-path `do` loop between iterations. `entered` distinguishes
    /// the first visit from a return after an iteration's body (which owes
    /// the loop's per-iteration bookkeeping charge and the increment).
    Loop {
        proc: &'p LProc,
        frame: Rc<FrameCell>,
        var: u32,
        body: &'p [LStmt],
        i: i64,
        hi: i64,
        st: i64,
        entered: bool,
    },
}

/// What a parked rank is waiting for — the saved completion half of the
/// one blocking builtin it stopped inside.
enum Wait {
    /// `mpi_waitall_recv` (`drain_sends: false`) or `mpi_waitall`
    /// (`drain_sends: true`): all posted receives must match.
    Recvs { drain_sends: bool },
    Barrier,
    /// The rendezvous is joined; on completion, decode `count` elements
    /// per partner into the saved receive window.
    Alltoall { recv: ArrayHandle, count: usize },
}

enum Flow {
    Continue,
    Blocked,
}

/// A rank's entire suspended execution state. Stepped by
/// [`clustersim::Cluster::run_resumable`] workers; never two at once.
pub(crate) struct Machine<'p> {
    interp: Interp<'p>,
    stack: Vec<Cont<'p>>,
    /// The main procedure's frame, kept for the final array dump.
    main_frame: Option<Rc<FrameCell>>,
    wait: Option<Wait>,
    started: bool,
}

// SAFETY: the scheduler hands each rank to exactly one worker at a time
// (sched.rs exclusive-execution invariant, enforced by the per-rank cell
// mutex in `run_resumable`), so the `Rc`/`RefCell` state in here is never
// aliased across threads — it only *moves* between workers at step
// boundaries. No `Rc` crosses a rank boundary: payloads travel between
// ranks as `Bytes`, and every frame/pending-buffer `Rc` is reachable only
// from this machine.
unsafe impl Send for Machine<'_> {}

impl<'p> Machine<'p> {
    pub fn new(program: &'p LProgram, opts: &'p Options) -> Machine<'p> {
        Machine {
            interp: Interp::new(program, opts),
            stack: Vec::new(),
            main_frame: None,
            wait: None,
            started: false,
        }
    }

    /// Resolve the pending blocking point, if any. Returns `false` —
    /// leaving the wait parked in place — when its condition isn't met.
    fn try_finish_wait(&mut self, comm: &mut Comm) -> bool {
        let Some(wait) = self.wait.take() else {
            return true;
        };
        match wait {
            Wait::Recvs { drain_sends } => match comm.poll_wait_all_recvs() {
                Some(done) => {
                    if drain_sends {
                        // Purely local: never blocks. Ordered after the
                        // receive matching exactly as in `Comm::wait_all`.
                        comm.drain_sends();
                        self.interp.finish_waitall(done);
                    } else {
                        self.interp.apply_received(done);
                    }
                    true
                }
                None => {
                    self.wait = Some(Wait::Recvs { drain_sends });
                    false
                }
            },
            Wait::Barrier => match comm.poll_barrier() {
                Some(()) => true,
                None => {
                    self.wait = Some(Wait::Barrier);
                    false
                }
            },
            Wait::Alltoall { recv, count } => match comm.poll_alltoall() {
                Some(received) => {
                    Interp::finish_alltoall(&recv, count, received);
                    true
                }
                None => {
                    self.wait = Some(Wait::Alltoall { recv, count });
                    false
                }
            },
        }
    }

    /// Execute one statement. Structural statements push continuations;
    /// blocking builtins run their begin half and poll; everything else
    /// delegates to the recursive executor.
    fn dispatch(
        &mut self,
        proc: &'p LProc,
        frame: Rc<FrameCell>,
        s: &'p LStmt,
        comm: &mut Comm,
    ) -> Flow {
        match s {
            LStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = {
                    let f = frame.borrow();
                    self.interp.eval(proc, &f, cond)
                };
                self.interp.charge_stmt(comm);
                let body = if c.is_true() { then_body } else { else_body };
                self.stack.push(Cont::Body {
                    proc,
                    frame,
                    stmts: body,
                    next: 0,
                });
                Flow::Continue
            }
            LStmt::Do {
                var,
                lower,
                upper,
                step,
                var_name,
                body,
                hoists,
                iter_charge,
            } => {
                let (lo, hi, st) = self.interp.do_prologue(
                    proc,
                    &frame,
                    lower,
                    upper,
                    step.as_ref(),
                    var_name,
                    hoists,
                    comm,
                );
                if let (Some(charge), [LStmt::Block { code, .. }]) =
                    (*iter_charge, body.as_slice())
                {
                    self.interp
                        .run_summarized_do(proc, &frame, *var, code, lo, hi, st, charge, comm);
                } else {
                    self.stack.push(Cont::Loop {
                        proc,
                        frame,
                        var: *var,
                        body,
                        i: lo,
                        hi,
                        st,
                        entered: false,
                    });
                }
                Flow::Continue
            }
            LStmt::CallUser { proc: callee, args } => {
                let callee_frame =
                    self.interp.prepare_user_call(proc, &frame, *callee, args, comm);
                let callee = &self.interp.program.procs[*callee];
                self.stack.push(Cont::Body {
                    proc: callee,
                    frame: Rc::new(FrameCell::new(callee_frame)),
                    stmts: &callee.body,
                    next: 0,
                });
                Flow::Continue
            }
            LStmt::CallBuiltin {
                op: op @ (Builtin::WaitallRecv | Builtin::Waitall),
                ..
            } => {
                self.interp.charge_stmt(comm);
                self.wait = Some(Wait::Recvs {
                    drain_sends: *op == Builtin::Waitall,
                });
                self.poll_or_block(comm)
            }
            LStmt::CallBuiltin {
                op: Builtin::Barrier,
                ..
            } => {
                self.interp.charge_stmt(comm);
                comm.barrier_begin();
                self.wait = Some(Wait::Barrier);
                self.poll_or_block(comm)
            }
            LStmt::CallBuiltin {
                op: Builtin::Alltoall,
                args,
                ..
            } => {
                let (recv, count, payloads) =
                    self.interp.prepare_alltoall(proc, &frame, args, comm);
                comm.alltoall_begin(payloads);
                self.wait = Some(Wait::Alltoall { recv, count });
                self.poll_or_block(comm)
            }
            // Everything else — assignments, summarized blocks, isend /
            // irecv posting, print — cannot block.
            other => {
                self.interp.exec_stmt(proc, &frame, other, comm);
                Flow::Continue
            }
        }
    }

    fn poll_or_block(&mut self, comm: &mut Comm) -> Flow {
        if self.try_finish_wait(comm) {
            Flow::Continue
        } else {
            Flow::Blocked
        }
    }
}

impl<'p> RankMachine for Machine<'p> {
    type Out = RankOutput;

    fn step(&mut self, comm: &mut Comm) -> Step<RankOutput> {
        if !self.started {
            // Deferred from construction so an allocation failure (bad
            // array bounds in main's declarations) panics inside a worker
            // step — becoming a RankPanic — not on the building thread.
            self.started = true;
            let main = &self.interp.program.procs[self.interp.program.main];
            let mut frame = self.interp.fresh_frame(main, comm);
            self.interp.allocate_locals(main, &mut frame, &[], comm);
            let cell = Rc::new(FrameCell::new(frame));
            self.main_frame = Some(Rc::clone(&cell));
            self.stack.push(Cont::Body {
                proc: main,
                frame: cell,
                stmts: &main.body,
                next: 0,
            });
        }
        if !self.try_finish_wait(comm) {
            return Step::Blocked;
        }
        loop {
            enum Work<'p> {
                Exec(&'p LProc, Rc<FrameCell>, &'p LStmt),
                EnterBody(&'p LProc, Rc<FrameCell>, &'p [LStmt]),
                Pop,
            }
            let Some(top) = self.stack.last_mut() else {
                break;
            };
            let work = match top {
                Cont::Body {
                    proc,
                    frame,
                    stmts,
                    next,
                } => {
                    if *next == stmts.len() {
                        Work::Pop
                    } else {
                        let stmts: &'p [LStmt] = stmts;
                        let s = &stmts[*next];
                        *next += 1;
                        Work::Exec(proc, Rc::clone(frame), s)
                    }
                }
                Cont::Loop {
                    proc,
                    frame,
                    var,
                    body,
                    i,
                    hi,
                    st,
                    entered,
                } => {
                    if *entered {
                        // The iteration that just finished owes the loop
                        // increment + test bookkeeping, exactly where the
                        // recursive executor charges it.
                        comm.advance(self.interp.opts.cost.ns_per_stmt);
                        *i += *st;
                    }
                    if (*st > 0 && *i > *hi) || (*st < 0 && *i < *hi) {
                        Work::Pop
                    } else {
                        *entered = true;
                        frame.borrow_mut().scalars[*var as usize] = Scalar::Int(*i);
                        Work::EnterBody(proc, Rc::clone(frame), body)
                    }
                }
            };
            match work {
                Work::Pop => {
                    self.stack.pop();
                }
                Work::EnterBody(proc, frame, stmts) => self.stack.push(Cont::Body {
                    proc,
                    frame,
                    stmts,
                    next: 0,
                }),
                Work::Exec(proc, frame, s) => {
                    if matches!(self.dispatch(proc, frame, s, comm), Flow::Blocked) {
                        return Step::Blocked;
                    }
                }
            }
        }
        let main = &self.interp.program.procs[self.interp.program.main];
        let frame = self
            .main_frame
            .take()
            .expect("machine ran, so main's frame exists")
            .take();
        Step::Done(rank_output(
            &frame,
            main,
            std::mem::take(&mut self.interp.prints),
        ))
    }
}
