//! The optimization pass over the lowered program: constant folding,
//! loop-invariant hoisting, and block-summarized cost accounting.
//!
//! Everything here is a pure *host-time* optimization — virtual times,
//! per-rank stats, outputs, and traces are byte-identical to the plain
//! tree walk. The parity argument (DESIGN.md §S3) rests on three
//! invariants:
//!
//! 1. **Folded and hoisted subtrees keep their historical op count.** The
//!    executor charges one `op` per expression node it visits; a
//!    [`LExpr::Const`] / [`LExpr::Hoisted`] replacement carries the
//!    replaced subtree's node count and charges it in one add, so every
//!    `charge_stmt` boundary sees exactly the ops the tree-walker
//!    accumulated. Since `eval` never short-circuits (both operands of
//!    `.and.`/`.or.` evaluate, every intrinsic argument evaluates), the
//!    static node count *is* the dynamic one.
//! 2. **Hoisted computations are pure and total.** Only expressions built
//!    from scalars and operators that cannot raise a runtime error
//!    (wrapping `+ - *`, comparisons, logicals, the total intrinsics) are
//!    hoisted, so evaluating them at loop entry — uncharged, and even when
//!    the loop runs zero iterations — is unobservable. `/`, `**`, `mod`,
//!    and array references stay in place, preserving both error timing
//!    and message.
//! 3. **Block charges are rounded per statement, then summed.** Virtual
//!    time is integer nanoseconds; `Comm::advance` rounds each f64 charge
//!    once at the boundary. The summarizer precomputes each statement's
//!    rounded charge (the same `ops·ns_per_op + ns_per_stmt` the
//!    tree-walker computes) and sums the *integers*, so the one
//!    [`clustersim::Comm::advance_exact`] add per block — or per loop
//!    iteration, when a loop body collapses to a single block — lands the
//!    clock on exactly the tree-walker's value. (Summing the f64 charges
//!    first would not: f64 addition is not associative.)
//!
//! Blocks never span communication, branches, calls, or loops — those
//! statements end a block, both because their cost is data-dependent and
//! because messages must depart/arrive at exactly the historical clock.
//! Block formation is disabled entirely under tracing (merged `Compute`
//! events would change the trace), and array stores are excluded from
//! blocks under buffer-reuse detection (the detector reads `now()`
//! mid-statement).

use crate::cost::{CostModel, Options};
use crate::exec::{try_binop, try_intrinsic};
use crate::lower::{
    ChainTy, Hoist, Instr, Intr, LArg, LCallArg, LExpr, LProgram, LSecDim, LSection, LStmt,
    Operand,
};
use crate::value::Scalar;
use clustersim::SimTime;
use fir::ast::BinOp;
use std::collections::HashSet;

/// Run the full pass in place: fold, unroll, fold again (the unrolled
/// copies carry literal loop-variable values, so e.g. `sin(0.002 * iw)`
/// now folds), hoist, then summarize.
pub(crate) fn optimize(program: &mut LProgram, opts: &Options) {
    for proc in &mut program.procs {
        for d in &mut proc.array_decls {
            for (lo, hi) in &mut d.dims {
                fold(lo);
                fold(hi);
            }
        }
        fold_stmts(&mut proc.body);

        if !opts.trace {
            unroll_stmts(&mut proc.body, !opts.detect_buffer_reuse, &opts.cost);
            fold_stmts(&mut proc.body);
        }

        let mut slots = 0u32;
        hoist_stmts(&mut proc.body, &mut slots);
        proc.hoist_slots = slots as usize;

        if !opts.trace {
            form_blocks(&mut proc.body, opts);
            if opts.typed_chains {
                crate::typeck::annotate_proc(proc);
            }
        }
    }
}

/// Static node count of an expression — exactly the ops the executor
/// charges when evaluating it (evaluation never short-circuits).
pub(crate) fn weight(e: &LExpr) -> u64 {
    match e {
        LExpr::Int(_) | LExpr::Real(_) | LExpr::Var(_) => 1,
        LExpr::Const { ops, .. } | LExpr::Hoisted { ops, .. } => u64::from(*ops),
        LExpr::ArrayRef { indices, .. } => 1 + indices.iter().map(weight).sum::<u64>(),
        LExpr::Intrinsic { args, .. } => 1 + args.iter().map(weight).sum::<u64>(),
        LExpr::Unary { operand, .. } => 1 + weight(operand),
        LExpr::Binary { lhs, rhs, .. } => 1 + weight(lhs) + weight(rhs),
    }
}

// ---------------------------------------------------------------- folding

fn const_of(e: &LExpr) -> Option<Scalar> {
    match e {
        LExpr::Int(v) => Some(Scalar::Int(*v)),
        LExpr::Real(v) => Some(Scalar::Real(*v)),
        LExpr::Const { v, .. } => Some(*v),
        _ => None,
    }
}

/// Replace `e` with a weighted constant when its value is fully decided at
/// lower time *and* evaluating it cannot error (erroring cases — division
/// by zero, `0 ** -n`, `mod` by zero, unknown names — stay unfolded so the
/// runtime error fires with its original timing and message).
fn fold(e: &mut LExpr) {
    let folded: Option<Scalar> = match e {
        LExpr::Int(_) | LExpr::Real(_) | LExpr::Var(_) | LExpr::Const { .. }
        | LExpr::Hoisted { .. } => None,
        LExpr::ArrayRef { indices, .. } => {
            indices.iter_mut().for_each(fold);
            None
        }
        LExpr::Intrinsic { op, name, args } => {
            args.iter_mut().for_each(fold);
            let vals: Option<Vec<Scalar>> = args.iter().map(const_of).collect();
            vals.filter(|vals| intrinsic_foldable(*op, vals))
                .and_then(|vals| try_intrinsic(*op, name, &vals).ok())
        }
        LExpr::Unary { op, operand } => {
            fold(operand);
            match const_of(operand) {
                // `-i64::MIN` overflows; leave it to the executor.
                Some(Scalar::Int(i64::MIN)) => None,
                Some(v) => Some(match op {
                    fir::ast::UnOp::Neg => match v {
                        Scalar::Int(x) => Scalar::Int(-x),
                        Scalar::Real(x) => Scalar::Real(-x),
                    },
                    fir::ast::UnOp::Not => Scalar::Int(i64::from(!v.is_true())),
                }),
                None => None,
            }
        }
        LExpr::Binary { op, lhs, rhs } => {
            fold(lhs);
            fold(rhs);
            match (const_of(lhs), const_of(rhs)) {
                // Integer `**` evaluates by repeated multiplication; a
                // huge literal exponent (possibly in dead code the
                // program never executes) must not hang *lowering* —
                // leave it for the executor to pay if reached.
                (Some(Scalar::Int(_)), Some(Scalar::Int(e)))
                    if *op == BinOp::Pow && e > POW_FOLD_MAX_EXP =>
                {
                    None
                }
                (Some(a), Some(b)) => try_binop(*op, a, b).ok(),
                _ => None,
            }
        }
    };
    if let Some(v) = folded {
        if let Ok(ops) = u32::try_from(weight(e)) {
            *e = LExpr::Const { v, ops };
        }
    }
}

/// Largest integer exponent constant folding will evaluate eagerly
/// (`try_int_pow` is O(exponent); beyond 63 the result is saturated
/// wrapping noise anyway, but must still match the executor bit-for-bit,
/// so small cases fold and big ones defer).
const POW_FOLD_MAX_EXP: i64 = 4096;

/// Can this intrinsic be applied at lower time without risking a panic the
/// tree-walker would only raise at run time (or not at all)?
fn intrinsic_foldable(op: Intr, vals: &[Scalar]) -> bool {
    match op {
        Intr::Unknown => false,
        Intr::Mod => {
            vals.len() == 2
                && matches!(vals[0], Scalar::Int(_))
                && matches!(vals[1], Scalar::Int(d) if d != 0)
        }
        _ => !vals.is_empty(),
    }
}

fn fold_section(sec: &mut LSection) {
    for d in &mut sec.dims {
        match d {
            LSecDim::Index(e) => fold(e),
            LSecDim::Range(a, b) => {
                if let Some(e) = a {
                    fold(e);
                }
                if let Some(e) = b {
                    fold(e);
                }
            }
        }
    }
}

fn fold_stmts(stmts: &mut [LStmt]) {
    for s in stmts {
        fold_stmt(s);
    }
}

fn fold_stmt(s: &mut LStmt) {
    match s {
        LStmt::AssignScalar { value, .. } => fold(value),
        LStmt::AssignArray { indices, value, .. } => {
            indices.iter_mut().for_each(fold);
            fold(value);
        }
        LStmt::Do {
            lower,
            upper,
            step,
            body,
            ..
        } => {
            fold(lower);
            fold(upper);
            if let Some(e) = step {
                fold(e);
            }
            fold_stmts(body);
        }
        LStmt::If {
            cond,
            then_body,
            else_body,
        } => {
            fold(cond);
            fold_stmts(then_body);
            fold_stmts(else_body);
        }
        LStmt::CallUser { args, .. } => {
            for a in args {
                match a {
                    LCallArg::Scalar { expr, .. } => fold(expr),
                    LCallArg::Section(sec) => fold_section(sec),
                    LCallArg::Array { .. } => {}
                }
            }
        }
        LStmt::CallBuiltin { args, .. } => {
            for a in args {
                match a {
                    LArg::Expr { expr, .. } => fold(expr),
                    LArg::Section(sec) => fold_section(sec),
                }
            }
        }
        LStmt::CallUnknown { .. } | LStmt::SetVar { .. } => {}
        LStmt::Block { .. } => unreachable!("blocks form after folding"),
    }
}

// ---------------------------------------------------------------- unrolling

/// Unroll loops with at most this many iterations…
const UNROLL_MAX_TRIP: i64 = 16;
/// …as long as the expansion stays at most this many statements.
const UNROLL_MAX_STMTS: i64 = 96;

/// Unroll small constant-trip loops whose bodies are pure straight-line
/// assignment runs, innermost first. Each iteration expands to a
/// [`LStmt::SetVar`] (the loop-variable store, carrying the iteration's
/// bookkeeping charge — and, on the first, the loop's bound-evaluation
/// charge) followed by a copy of the body with the loop variable
/// substituted by a weight-1 constant. The expansion is always swallowed
/// by block formation afterwards (every emitted statement is
/// block-eligible), so the carried charges always land in a summarized
/// total — which is why unrolling shares the `!opts.trace` gate.
fn unroll_stmts(stmts: &mut Vec<LStmt>, allow_array: bool, cost: &CostModel) {
    for s in stmts.iter_mut() {
        match s {
            LStmt::Do { body, .. } => unroll_stmts(body, allow_array, cost),
            LStmt::If {
                then_body,
                else_body,
                ..
            } => {
                unroll_stmts(then_body, allow_array, cost);
                unroll_stmts(else_body, allow_array, cost);
            }
            _ => {}
        }
    }
    let old = std::mem::take(stmts);
    for s in old {
        match try_unroll(s, allow_array, cost) {
            Ok(mut seq) => stmts.append(&mut seq),
            Err(s) => stmts.push(s),
        }
    }
}

#[allow(clippy::result_large_err)] // Err returns the statement unchanged
fn try_unroll(s: LStmt, allow_array: bool, cost: &CostModel) -> Result<Vec<LStmt>, LStmt> {
    let LStmt::Do {
        var,
        lower,
        upper,
        step,
        body,
        ..
    } = &s
    else {
        return Err(s);
    };
    // Bounds must be integer constants (a real bound is a runtime error
    // that must keep its timing), the trip count positive and small, and
    // the body a pure straight-line assignment run.
    let (Some(Scalar::Int(lo)), Some(Scalar::Int(hi))) = (const_of(lower), const_of(upper))
    else {
        return Err(s);
    };
    let st = match step {
        None => 1,
        Some(e) => match const_of(e) {
            Some(Scalar::Int(v)) if v != 0 => v,
            _ => return Err(s), // symbolic, real, or the zero-step error
        },
    };
    // Keep the trip/stride arithmetic below far away from i64 overflow
    // (the tree-walker's own wrap-around stays its problem to replicate).
    const MAG: i64 = 1 << 32;
    if !(-MAG..=MAG).contains(&lo) || !(-MAG..=MAG).contains(&hi) || !(-MAG..=MAG).contains(&st) {
        return Err(s);
    }
    let trip = if st > 0 {
        if lo > hi {
            0
        } else {
            (hi - lo) / st + 1
        }
    } else if lo < hi {
        0
    } else {
        (lo - hi) / (-st) + 1
    };
    if !(1..=UNROLL_MAX_TRIP).contains(&trip)
        || trip.saturating_mul(body.len() as i64 + 1) > UNROLL_MAX_STMTS
    {
        return Err(s);
    }
    let straight = body.iter().all(|b| match b {
        LStmt::AssignScalar { .. } | LStmt::SetVar { .. } => true,
        LStmt::AssignArray { .. } => allow_array,
        _ => false,
    });
    if !straight {
        return Err(s);
    }
    // If the body writes the loop variable's slot, reads must keep going
    // through the slot; otherwise substitute the literal per iteration so
    // the second folding pass can exploit it.
    let body_writes_var = body.iter().any(|b| match b {
        LStmt::AssignScalar { slot, .. } | LStmt::SetVar { slot, .. } => slot == var,
        _ => false,
    });

    let bounds_ops =
        weight(lower) + weight(upper) + step.as_ref().map(weight).unwrap_or(0);
    let head_charge =
        SimTime::from_ns_f64(bounds_ops as f64 * cost.ns_per_op + cost.ns_per_stmt).as_ns();
    let book_charge = SimTime::from_ns_f64(cost.ns_per_stmt).as_ns();

    let mut out = Vec::with_capacity((trip as usize) * (body.len() + 1));
    let mut i = lo;
    for iter in 0..trip {
        out.push(LStmt::SetVar {
            slot: *var,
            v: i,
            charge: book_charge + if iter == 0 { head_charge } else { 0 },
        });
        for b in body {
            let mut copy = b.clone();
            if !body_writes_var {
                subst_var_stmt(&mut copy, *var, i);
            }
            out.push(copy);
        }
        i += st;
    }
    Ok(out)
}

/// Replace reads of the unrolled loop variable with its literal value for
/// this iteration — as a weight-1 constant, so charges are unchanged.
fn subst_var_stmt(s: &mut LStmt, var: u32, v: i64) {
    match s {
        LStmt::AssignScalar { value, .. } => subst_var(value, var, v),
        LStmt::AssignArray { indices, value, .. } => {
            for i in indices.iter_mut() {
                subst_var(i, var, v);
            }
            subst_var(value, var, v);
        }
        LStmt::SetVar { .. } => {}
        other => unreachable!("non-straight-line statement in an unrolled body: {other:?}"),
    }
}

fn subst_var(e: &mut LExpr, var: u32, v: i64) {
    match e {
        LExpr::Var(slot) if *slot == var => {
            *e = LExpr::Const {
                v: Scalar::Int(v),
                ops: 1,
            }
        }
        LExpr::Int(_) | LExpr::Real(_) | LExpr::Var(_) | LExpr::Const { .. }
        | LExpr::Hoisted { .. } => {}
        LExpr::ArrayRef { indices, .. } => {
            indices.iter_mut().for_each(|i| subst_var(i, var, v))
        }
        LExpr::Intrinsic { args, .. } => args.iter_mut().for_each(|a| subst_var(a, var, v)),
        LExpr::Unary { operand, .. } => subst_var(operand, var, v),
        LExpr::Binary { lhs, rhs, .. } => {
            subst_var(lhs, var, v);
            subst_var(rhs, var, v);
        }
    }
}

// ---------------------------------------------------------------- hoisting

fn hoist_stmts(stmts: &mut [LStmt], slots: &mut u32) {
    for s in stmts {
        match s {
            LStmt::Do { .. } => hoist_loop(s, slots),
            LStmt::If {
                then_body,
                else_body,
                ..
            } => {
                hoist_stmts(then_body, slots);
                hoist_stmts(else_body, slots);
            }
            _ => {}
        }
    }
}

/// Hoist this loop's maximal invariant subtrees to its entry, then give
/// nested loops their own pass (a subtree variant here but invariant in an
/// inner loop hoists to the inner entry instead — still once per outer
/// iteration instead of once per inner iteration).
fn hoist_loop(do_stmt: &mut LStmt, slots: &mut u32) {
    let LStmt::Do {
        var, body, hoists, ..
    } = do_stmt
    else {
        unreachable!("hoist_loop is called on Do statements only")
    };
    let mut assigned = HashSet::new();
    assigned.insert(*var);
    collect_assigned(body, &mut assigned);
    for s in body.iter_mut() {
        hoist_stmt_exprs(s, &assigned, hoists, slots);
    }
    hoist_stmts(body, slots);
}

/// Scalar slots written anywhere inside these statements (assignments and
/// loop variables). User calls cannot write caller scalars (by-value) and
/// builtins only write arrays, so this is the complete kill set.
fn collect_assigned(stmts: &[LStmt], out: &mut HashSet<u32>) {
    for s in stmts {
        match s {
            LStmt::AssignScalar { slot, .. } | LStmt::SetVar { slot, .. } => {
                out.insert(*slot);
            }
            LStmt::Do { var, body, .. } => {
                out.insert(*var);
                collect_assigned(body, out);
            }
            LStmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_assigned(then_body, out);
                collect_assigned(else_body, out);
            }
            LStmt::AssignArray { .. }
            | LStmt::CallUser { .. }
            | LStmt::CallUnknown { .. }
            | LStmt::CallBuiltin { .. } => {}
            LStmt::Block { .. } => unreachable!("blocks form after hoisting"),
        }
    }
}

fn hoist_stmt_exprs(
    s: &mut LStmt,
    assigned: &HashSet<u32>,
    hoists: &mut Vec<Hoist>,
    slots: &mut u32,
) {
    match s {
        LStmt::AssignScalar { value, .. } => try_hoist(value, assigned, hoists, slots),
        LStmt::AssignArray { indices, value, .. } => {
            for i in indices.iter_mut() {
                try_hoist(i, assigned, hoists, slots);
            }
            try_hoist(value, assigned, hoists, slots);
        }
        LStmt::Do {
            lower,
            upper,
            step,
            body,
            ..
        } => {
            try_hoist(lower, assigned, hoists, slots);
            try_hoist(upper, assigned, hoists, slots);
            if let Some(e) = step {
                try_hoist(e, assigned, hoists, slots);
            }
            for b in body.iter_mut() {
                hoist_stmt_exprs(b, assigned, hoists, slots);
            }
        }
        LStmt::If {
            cond,
            then_body,
            else_body,
        } => {
            try_hoist(cond, assigned, hoists, slots);
            for b in then_body.iter_mut() {
                hoist_stmt_exprs(b, assigned, hoists, slots);
            }
            for b in else_body.iter_mut() {
                hoist_stmt_exprs(b, assigned, hoists, slots);
            }
        }
        LStmt::CallUser { args, .. } => {
            for a in args {
                match a {
                    LCallArg::Scalar { expr, .. } => try_hoist(expr, assigned, hoists, slots),
                    LCallArg::Section(sec) => hoist_section(sec, assigned, hoists, slots),
                    LCallArg::Array { .. } => {}
                }
            }
        }
        LStmt::CallBuiltin { args, .. } => {
            for a in args {
                match a {
                    LArg::Expr { expr, .. } => try_hoist(expr, assigned, hoists, slots),
                    LArg::Section(sec) => hoist_section(sec, assigned, hoists, slots),
                }
            }
        }
        LStmt::CallUnknown { .. } | LStmt::SetVar { .. } => {}
        LStmt::Block { .. } => unreachable!("blocks form after hoisting"),
    }
}

fn hoist_section(
    sec: &mut LSection,
    assigned: &HashSet<u32>,
    hoists: &mut Vec<Hoist>,
    slots: &mut u32,
) {
    for d in &mut sec.dims {
        match d {
            LSecDim::Index(e) => try_hoist(e, assigned, hoists, slots),
            LSecDim::Range(a, b) => {
                if let Some(e) = a {
                    try_hoist(e, assigned, hoists, slots);
                }
                if let Some(e) = b {
                    try_hoist(e, assigned, hoists, slots);
                }
            }
        }
    }
}

/// Replace `e` with a hoist-slot read when it is invariant, pure, total,
/// and worth caching (≥ 2 nodes — a bare variable read costs the same as
/// a slot read); otherwise recurse into children looking for maximal
/// hoistable subtrees.
fn try_hoist(e: &mut LExpr, assigned: &HashSet<u32>, hoists: &mut Vec<Hoist>, slots: &mut u32) {
    if invariant_pure(e, assigned) {
        let w = weight(e);
        if w >= 2 {
            if let Ok(ops) = u32::try_from(w) {
                let slot = *slots;
                *slots += 1;
                let expr = std::mem::replace(e, LExpr::Hoisted { slot, ops });
                hoists.push(Hoist { slot, expr });
            }
        }
        return;
    }
    match e {
        LExpr::ArrayRef { indices, .. } => indices
            .iter_mut()
            .for_each(|i| try_hoist(i, assigned, hoists, slots)),
        LExpr::Intrinsic { args, .. } => args
            .iter_mut()
            .for_each(|a| try_hoist(a, assigned, hoists, slots)),
        LExpr::Unary { operand, .. } => try_hoist(operand, assigned, hoists, slots),
        LExpr::Binary { lhs, rhs, .. } => {
            try_hoist(lhs, assigned, hoists, slots);
            try_hoist(rhs, assigned, hoists, slots);
        }
        LExpr::Int(_) | LExpr::Real(_) | LExpr::Var(_) | LExpr::Const { .. }
        | LExpr::Hoisted { .. } => {}
    }
}

/// Invariant w.r.t. the loop's kill set, and safe to evaluate early:
/// no reads of assigned slots, no array accesses (contents change, and
/// out-of-bounds errors must keep their timing), and no operator that can
/// raise a runtime error (`/`, `**`, `mod`, unknown names).
fn invariant_pure(e: &LExpr, assigned: &HashSet<u32>) -> bool {
    match e {
        LExpr::Int(_) | LExpr::Real(_) | LExpr::Const { .. } => true,
        LExpr::Var(slot) => !assigned.contains(slot),
        // Written at an enclosing loop's entry, strictly before this loop.
        LExpr::Hoisted { .. } => true,
        LExpr::ArrayRef { .. } => false,
        LExpr::Intrinsic { op, args, .. } => {
            !matches!(op, Intr::Mod | Intr::Unknown)
                && args.iter().all(|a| invariant_pure(a, assigned))
        }
        LExpr::Unary { operand, .. } => invariant_pure(operand, assigned),
        LExpr::Binary { op, lhs, rhs } => {
            use BinOp::*;
            matches!(op, Add | Sub | Mul | Eq | Ne | Lt | Le | Gt | Ge | And | Or)
                && invariant_pure(lhs, assigned)
                && invariant_pure(rhs, assigned)
        }
    }
}

// ------------------------------------------------- block summarization

/// The rounded charge `charge_stmt` would make for one straight-line
/// statement: its static op count times `ns_per_op`, plus the statement
/// dispatch cost, rounded to integer nanoseconds exactly once.
fn stmt_charge(s: &LStmt, cost: &CostModel) -> u64 {
    let ops = match s {
        LStmt::AssignScalar { value, .. } => weight(value),
        LStmt::AssignArray { indices, value, .. } => {
            indices.iter().map(weight).sum::<u64>() + weight(value)
        }
        // Unrolled loop heads carry their (already rounded) charge.
        LStmt::SetVar { charge, .. } => return *charge,
        other => unreachable!("non-straight-line statement in a block: {other:?}"),
    };
    SimTime::from_ns_f64(ops as f64 * cost.ns_per_op + cost.ns_per_stmt).as_ns()
}

/// Group maximal runs of straight-line assignments into [`LStmt::Block`]s
/// with precomputed charges, and collapse whole-body blocks into the
/// loop's one-add-per-iteration fast path.
fn form_blocks(stmts: &mut Vec<LStmt>, opts: &Options) {
    for s in stmts.iter_mut() {
        match s {
            LStmt::Do {
                body, iter_charge, ..
            } => {
                form_blocks(body, opts);
                if let [LStmt::Block { charge, .. }] = body.as_slice() {
                    // Fold the loop's own increment/test bookkeeping into
                    // the per-iteration add.
                    *iter_charge =
                        Some(charge + SimTime::from_ns_f64(opts.cost.ns_per_stmt).as_ns());
                }
            }
            LStmt::If {
                then_body,
                else_body,
                ..
            } => {
                form_blocks(then_body, opts);
                form_blocks(else_body, opts);
            }
            _ => {}
        }
    }

    // Communication buffers are read at send time and written at wait
    // time under the *same* clock discipline either way, but the hazard
    // detector compares array stores against `now()` mid-statement — so
    // array stores only join blocks when detection is off.
    let allow_array = !opts.detect_buffer_reuse;
    let eligible = |s: &LStmt| match s {
        LStmt::AssignScalar { .. } | LStmt::SetVar { .. } => true,
        LStmt::AssignArray { .. } => allow_array,
        _ => false,
    };

    let old = std::mem::take(stmts);
    let mut run: Vec<LStmt> = Vec::new();
    for s in old {
        if eligible(&s) {
            run.push(s);
        } else {
            flush_run(&mut run, stmts, &opts.cost);
            stmts.push(s);
        }
    }
    flush_run(&mut run, stmts, &opts.cost);
}

fn flush_run(run: &mut Vec<LStmt>, out: &mut Vec<LStmt>, cost: &CostModel) {
    if run.is_empty() {
        return;
    }
    let stmts = std::mem::take(run);
    let charge = stmts.iter().map(|s| stmt_charge(s, cost)).sum();
    let code = compile_block(&stmts);
    out.push(LStmt::Block {
        stmts,
        code,
        charge,
    });
}

// ---------------------------------------------------- tape compilation

/// Compile a block's statements to the flat postfix tape the executor
/// runs. Instruction order is exactly the tree-walker's evaluation order
/// (indices left to right — each converted to an integer as soon as it is
/// evaluated, like `eval_indices` — then values, then the store), so any
/// runtime error fires at the same point with the same message.
fn compile_block(stmts: &[LStmt]) -> Vec<Instr> {
    let code = compile_block_unfused(stmts);
    // Peephole: fuse a leaf push directly followed by the Binary that
    // consumes it as its right operand, and leaf subscript conversions —
    // pure dispatch-count reductions, bit-identical results.
    let mut fused = Vec::with_capacity(code.len());
    for ins in code {
        match (fused.last(), &ins) {
            (Some(Instr::PushVar(slot)), Instr::Binary(op)) => {
                let f = Instr::BinRhsVar {
                    op: *op,
                    slot: *slot,
                };
                fused.pop();
                fused.push(f);
            }
            (Some(Instr::PushConst(v)), Instr::Binary(op)) => {
                let f = Instr::BinRhsConst { op: *op, v: *v };
                fused.pop();
                fused.push(f);
            }
            (Some(Instr::PushInt(v)), Instr::Binary(op)) => {
                let f = Instr::BinRhsConst {
                    op: *op,
                    v: Scalar::Int(*v),
                };
                fused.pop();
                fused.push(f);
            }
            (Some(Instr::PushReal(v)), Instr::Binary(op)) => {
                let f = Instr::BinRhsConst {
                    op: *op,
                    v: Scalar::Real(*v),
                };
                fused.pop();
                fused.push(f);
            }
            (Some(Instr::PushHoisted(slot)), Instr::Binary(op)) => {
                let f = Instr::BinRhsHoisted {
                    op: *op,
                    slot: *slot,
                };
                fused.pop();
                fused.push(f);
            }
            (Some(Instr::PushVar(slot)), Instr::ExpectIdx) => {
                let f = Instr::PushIdxVar(*slot);
                fused.pop();
                fused.push(f);
            }
            _ => fused.push(ins),
        }
    }
    fused
}

fn compile_block_unfused(stmts: &[LStmt]) -> Vec<Instr> {
    let mut code = Vec::new();
    for s in stmts {
        match s {
            LStmt::AssignScalar { slot, ty, value } => {
                if let Some((first, rest)) = as_chain(value) {
                    code.push(Instr::ChainScalar {
                        dst: *slot,
                        ty: *ty,
                        first,
                        rest: rest.into_boxed_slice(),
                        mono: ChainTy::Dyn,
                    });
                    continue;
                }
                compile_expr(value, &mut code);
                code.push(Instr::StoreScalar {
                    slot: *slot,
                    ty: *ty,
                });
            }
            LStmt::AssignArray {
                slot,
                name,
                indices,
                value,
            } => {
                if let (Some(slot), true) = (slot, indices.len() <= 4) {
                    let idxs: Option<Vec<Operand>> = indices.iter().map(as_operand).collect();
                    if let (Some(idxs), Some((first, rest))) = (idxs, as_chain(value)) {
                        code.push(Instr::ChainArray {
                            slot: *slot,
                            name: name.as_str().into(),
                            idxs: idxs.into_boxed_slice(),
                            first,
                            rest: rest.into_boxed_slice(),
                            mono: ChainTy::Dyn,
                        });
                        continue;
                    }
                }
                for i in indices {
                    compile_expr(i, &mut code);
                    code.push(Instr::ExpectIdx);
                }
                compile_expr(value, &mut code);
                match slot {
                    Some(slot) => code.push(Instr::StoreArray {
                        slot: *slot,
                        argc: indices.len() as u16,
                        name: name.as_str().into(),
                    }),
                    // The tree-walker evaluates indices and value, charges,
                    // *then* reports the unknown-array error.
                    None => code.push(Instr::ErrNotArray {
                        name: name.as_str().into(),
                    }),
                }
            }
            LStmt::SetVar { slot, v, .. } => code.push(Instr::SetVar { slot: *slot, v: *v }),
            other => unreachable!("non-straight-line statement in a block: {other:?}"),
        }
    }
    code
}

/// Convert an expression into a chain operand — total except for the
/// shapes the fetcher's fixed buffers cannot hold (array rank > 8,
/// intrinsic arity > 8), which keep the general stack path.
fn as_operand(e: &LExpr) -> Option<Operand> {
    Some(match e {
        LExpr::Int(v) => Operand::Const(Scalar::Int(*v)),
        LExpr::Real(v) => Operand::Const(Scalar::Real(*v)),
        LExpr::Const { v, .. } => Operand::Const(*v),
        LExpr::Var(slot) => Operand::Var(*slot),
        LExpr::Hoisted { slot, .. } => Operand::Hoisted(*slot),
        LExpr::ArrayRef {
            slot,
            name,
            indices,
        } => {
            if indices.len() > 8 {
                return None;
            }
            let idxs: Option<Vec<Operand>> = indices.iter().map(as_operand).collect();
            let idxs = idxs?.into_boxed_slice();
            let name = name.as_str().into();
            match slot {
                Some(slot) => Operand::Load {
                    slot: *slot,
                    idxs,
                    name,
                },
                None => Operand::LoadErr { idxs, name },
            }
        }
        LExpr::Unary { op, operand } => Operand::Un {
            op: *op,
            operand: Box::new(as_operand(operand)?),
        },
        LExpr::Binary { op, lhs, rhs } => Operand::Bin {
            op: *op,
            a: Box::new(as_operand(lhs)?),
            b: Box::new(as_operand(rhs)?),
        },
        LExpr::Intrinsic { op, name, args } => {
            if args.len() > 8 {
                return None;
            }
            let cargs: Option<Vec<Operand>> = args.iter().map(as_operand).collect();
            Operand::Intr {
                op: *op,
                name: name.as_str().into(),
                args: cargs?.into_boxed_slice(),
            }
        }
    })
}

/// Decompose the expression's left-leaning binary spine:
/// `((a op1 b) op2 c)` → `(a, [(op1, b), (op2, c)])`. Evaluating `a` then
/// each (op, operand) left to right is exactly the tree-walker's
/// post-order visit; the flat spine turns the commonest shape — an
/// accumulation chain — into a well-predicted internal loop.
fn as_chain(e: &LExpr) -> Option<(Operand, Vec<(BinOp, Operand)>)> {
    if let LExpr::Binary { op, lhs, rhs } = e {
        let rhs = as_operand(rhs)?;
        let (first, mut rest) = as_chain(lhs)?;
        rest.push((*op, rhs));
        return Some((first, rest));
    }
    Some((as_operand(e)?, Vec::new()))
}

fn compile_expr(e: &LExpr, code: &mut Vec<Instr>) {
    match e {
        LExpr::Int(v) => code.push(Instr::PushInt(*v)),
        LExpr::Real(v) => code.push(Instr::PushReal(*v)),
        LExpr::Const { v, .. } => code.push(Instr::PushConst(*v)),
        LExpr::Var(slot) => code.push(Instr::PushVar(*slot)),
        LExpr::Hoisted { slot, .. } => code.push(Instr::PushHoisted(*slot)),
        LExpr::ArrayRef {
            slot,
            name,
            indices,
        } => {
            for i in indices {
                compile_expr(i, code);
                code.push(Instr::ExpectIdx);
            }
            match slot {
                Some(slot) => code.push(Instr::LoadArray {
                    slot: *slot,
                    argc: indices.len() as u16,
                    name: name.as_str().into(),
                }),
                None => code.push(Instr::ErrNotArray {
                    name: name.as_str().into(),
                }),
            }
        }
        LExpr::Intrinsic { op, name, args } => {
            for a in args {
                compile_expr(a, code);
            }
            code.push(Instr::Intrinsic {
                op: *op,
                argc: args.len() as u16,
                name: name.as_str().into(),
            });
        }
        LExpr::Unary { op, operand } => {
            compile_expr(operand, code);
            code.push(Instr::Unary(*op));
        }
        LExpr::Binary { op, lhs, rhs } => {
            compile_expr(lhs, code);
            compile_expr(rhs, code);
            code.push(Instr::Binary(*op));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;

    fn lowered_main(src: &str, opts: &Options) -> crate::lower::LProc {
        let program = fir::parse_validated(src).expect("test source is valid");
        let mut l = lower(&program);
        optimize(&mut l, opts);
        let main = l.main;
        l.procs.swap_remove(main)
    }

    fn count_blocks(stmts: &[LStmt], out: &mut Vec<usize>) {
        for s in stmts {
            match s {
                LStmt::Block { stmts, .. } => {
                    out.push(stmts.len());
                    // Blocks are flat: only straight-line assignments.
                    assert!(stmts.iter().all(|s| matches!(
                        s,
                        LStmt::AssignScalar { .. } | LStmt::AssignArray { .. }
                    )));
                }
                LStmt::Do { body, .. } => count_blocks(body, out),
                LStmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    count_blocks(then_body, out);
                    count_blocks(else_body, out);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn constants_fold_with_historical_weight() {
        let main = lowered_main(
            "program m\n  integer :: a(8)\n  a(2 * 3 + 1) = 4 - 2\nend program",
            &Options::default(),
        );
        let LStmt::Block { stmts, .. } = &main.body[0] else {
            panic!("assignment summarized into a block");
        };
        let LStmt::AssignArray { indices, value, .. } = &stmts[0] else {
            panic!("array assignment survives");
        };
        // `2 * 3 + 1` is 5 nodes, `4 - 2` is 3 nodes.
        assert!(
            matches!(indices[0], LExpr::Const { v: Scalar::Int(7), ops: 5 }),
            "{:?}",
            indices[0]
        );
        assert!(
            matches!(value, LExpr::Const { v: Scalar::Int(2), ops: 3 }),
            "{value:?}"
        );
    }

    #[test]
    fn erroring_constants_stay_unfolded() {
        for src in [
            "program m\n  integer :: a(4)\n  a(1) = 1 / 0\nend program",
            "program m\n  integer :: a(4)\n  a(1) = mod(1, 0)\nend program",
            "program m\n  integer :: a(4)\n  a(1) = 0 ** (-1)\nend program",
        ] {
            let main = lowered_main(src, &Options::default());
            let LStmt::Block { stmts, .. } = &main.body[0] else {
                panic!("assignment summarized into a block");
            };
            let LStmt::AssignArray { value, .. } = &stmts[0] else {
                panic!("array assignment survives");
            };
            assert!(
                !matches!(value, LExpr::Const { .. }),
                "erroring expression must not fold: {value:?}"
            );
        }
    }

    #[test]
    fn loop_invariant_index_math_hoists() {
        let main = lowered_main(
            "program m\n  integer :: a(64)\n  do i = 1, 64\n    a(i) = np * 2 + mynum + i\n  end do\nend program",
            &Options::default(),
        );
        let LStmt::Do { hoists, body, .. } = &main.body[0] else {
            panic!("loop survives");
        };
        // `np * 2 + mynum` (5 nodes) hoists; `+ i` stays.
        assert_eq!(hoists.len(), 1);
        assert_eq!(weight(&hoists[0].expr), 5);
        let LStmt::Block { stmts, .. } = &body[0] else {
            panic!("loop body summarized");
        };
        let LStmt::AssignArray { value, .. } = &stmts[0] else {
            panic!("array assignment survives");
        };
        let LExpr::Binary { lhs, .. } = value else {
            panic!("the varying `+ i` remains: {value:?}");
        };
        assert!(matches!(**lhs, LExpr::Hoisted { ops: 5, .. }), "{lhs:?}");
    }

    #[test]
    fn hoisting_respects_the_kill_set() {
        // `t` is assigned inside the loop, so `t * 2` must not hoist.
        let main = lowered_main(
            "program m\n  integer :: a(64)\n  do i = 1, 64\n    t = t * 2 + 1\n    a(i) = t\n  end do\nend program",
            &Options::default(),
        );
        let LStmt::Do { hoists, .. } = &main.body[0] else {
            panic!("loop survives");
        };
        assert!(hoists.is_empty(), "{hoists:?}");
    }

    #[test]
    fn erroring_operators_never_hoist() {
        // `np / i0` and `mod(np, i0)` are invariant but can error — they
        // must stay in place so the error keeps its timing and message.
        let main = lowered_main(
            "program m\n  integer :: a(64)\n  i0 = 3\n  do i = 1, 64\n    a(i) = np / i0 + mod(np, i0) + i\n  end do\nend program",
            &Options::default(),
        );
        let LStmt::Do { hoists, .. } = &main.body[1] else {
            panic!("loop survives");
        };
        assert!(hoists.is_empty(), "{hoists:?}");
    }

    #[test]
    fn blocks_never_span_communication_or_calls() {
        let main = lowered_main(
            "program m
  real :: s(16), r(16)
  do it = 1, 2
    s(1) = 1
    s(2) = 2
    call mpi_isend(s, 4, mod(mynum + 1, np), 5)
    s(3) = 3
    call mpi_irecv(r, 4, mod(np + mynum - 1, np), 5)
    s(4) = 4
    call mpi_waitall()
  end do
end program",
            &Options::default(),
        );
        let LStmt::Do {
            body, iter_charge, ..
        } = &main.body[0]
        else {
            panic!("loop survives");
        };
        // Three separate blocks — [s1,s2], [s3], [s4] — each ended by a
        // builtin call; the body is NOT one summarized block.
        assert!(iter_charge.is_none());
        let mut sizes = Vec::new();
        count_blocks(body, &mut sizes);
        assert_eq!(sizes, vec![2, 1, 1]);
        let calls = body
            .iter()
            .filter(|s| matches!(s, LStmt::CallBuiltin { .. }))
            .count();
        assert_eq!(calls, 3, "calls stay top-level between blocks");
    }

    #[test]
    fn user_calls_end_blocks_too() {
        let main = lowered_main(
            "subroutine f(x)
  integer :: x
end subroutine

program m
  integer :: a(4)
  a(1) = 1
  call f(2)
  a(2) = 2
end program",
            &Options::default(),
        );
        let mut sizes = Vec::new();
        count_blocks(&main.body, &mut sizes);
        assert_eq!(sizes, vec![1, 1]);
        assert!(main
            .body
            .iter()
            .any(|s| matches!(s, LStmt::CallUser { .. })));
    }

    #[test]
    fn whole_body_block_gains_the_iteration_charge() {
        let main = lowered_main(
            "program m\n  integer :: a(64)\n  do i = 1, 64\n    a(i) = i * 2\n  end do\nend program",
            &Options::default(),
        );
        let LStmt::Do {
            body, iter_charge, ..
        } = &main.body[0]
        else {
            panic!("loop survives");
        };
        let [LStmt::Block { charge, .. }] = body.as_slice() else {
            panic!("single-assignment body summarizes to one block");
        };
        // value `i * 2` = 3 ops, indices `i` = 1 op: 4·1 + 2 = 6 ns; the
        // iteration adds the loop bookkeeping's own 2 ns.
        assert_eq!(*charge, 6);
        assert_eq!(*iter_charge, Some(8));
    }

    #[test]
    fn small_constant_loops_unroll_into_the_enclosing_block() {
        let main = lowered_main(
            "program m\n  real :: a(4)\n  do i = 1, 3\n    t = t + sin(0.5 * i)\n  end do\n  a(1) = t\nend program",
            &Options::default(),
        );
        // The whole body — unrolled loop plus the final store — is one
        // summarized block.
        let [LStmt::Block { stmts, charge, .. }] = main.body.as_slice() else {
            panic!("unrolled program summarizes to one block: {:?}", main.body);
        };
        let setvars: Vec<_> = stmts
            .iter()
            .filter_map(|s| match s {
                LStmt::SetVar { v, charge, .. } => Some((*v, *charge)),
                _ => None,
            })
            .collect();
        // Three iterations; the first SetVar carries the loop-head charge
        // (2 bound ops · 1 ns + 2 ns = 4 ns) on top of the per-iteration
        // bookkeeping (2 ns).
        assert_eq!(setvars, vec![(1, 6), (2, 2), (3, 2)]);
        // The substituted `sin(0.5 * i)` folded to a constant of the
        // historical weight (sin + mul + two leaves = 4 nodes), so each
        // assignment charges round(6·1 + 2) = 8 ns: value is
        // `t + Const` = 1 + 1 + 4 = 6 ops.
        let consts: Vec<_> = stmts
            .iter()
            .filter_map(|s| match s {
                LStmt::AssignScalar { value: LExpr::Binary { rhs, .. }, .. } => {
                    match **rhs {
                        LExpr::Const { v: Scalar::Real(x), ops } => Some((x, ops)),
                        _ => None,
                    }
                }
                _ => None,
            })
            .collect();
        assert_eq!(consts.len(), 3);
        assert!(consts.iter().all(|(_, ops)| *ops == 4));
        assert_eq!(consts[1].0, (1.0f64).sin());
        // Total: head 4 + 3·(bookkeeping 2 + assignment 8) + final array
        // store round((1 + 1)·1 + 2) = 4.
        assert_eq!(*charge, 4 + 3 * (2 + 8) + 4);
    }

    #[test]
    fn symbolic_or_large_loops_do_not_unroll() {
        for src in [
            // Symbolic bound.
            "program m\n  real :: a(4)\n  do i = 1, np\n    t = t + i\n  end do\n  a(1) = t\nend program",
            // Trip count above the threshold.
            "program m\n  real :: a(4)\n  do i = 1, 64\n    t = t + i\n  end do\n  a(1) = t\nend program",
            // Body contains a call.
            "program m\n  real :: a(4)\n  do i = 1, 3\n    call print(i)\n  end do\n  a(1) = t\nend program",
        ] {
            let main = lowered_main(src, &Options::default());
            assert!(
                main.body
                    .iter()
                    .any(|s| matches!(s, LStmt::Do { .. })),
                "loop must survive: {src}"
            );
        }
    }

    #[test]
    fn tracing_disables_block_formation_but_keeps_folding() {
        let opts = Options {
            trace: true,
            ..Default::default()
        };
        let main = lowered_main(
            "program m\n  integer :: a(8)\n  a(1) = 2 + 3\n  a(2) = 4\nend program",
            &opts,
        );
        let mut sizes = Vec::new();
        count_blocks(&main.body, &mut sizes);
        assert!(sizes.is_empty(), "no blocks under tracing");
        let LStmt::AssignArray { value, .. } = &main.body[0] else {
            panic!("plain assignment under tracing");
        };
        assert!(matches!(value, LExpr::Const { v: Scalar::Int(5), ops: 3 }));
    }

    #[test]
    fn buffer_reuse_detection_excludes_array_stores_from_blocks() {
        let opts = Options::strict();
        let main = lowered_main(
            "program m\n  integer :: a(8)\n  t = 1\n  u = 2\n  a(1) = t\n  v = 3\nend program",
            &opts,
        );
        let mut sizes = Vec::new();
        count_blocks(&main.body, &mut sizes);
        // Scalar runs still summarize; the array store stands alone.
        assert_eq!(sizes, vec![2, 1]);
        assert!(main
            .body
            .iter()
            .any(|s| matches!(s, LStmt::AssignArray { .. })));
    }
}

