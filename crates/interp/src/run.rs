//! Top-level entry points: validate a program, run it on a simulated
//! cluster, and collect per-rank outputs for equivalence checking.

use crate::cost::Options;
use crate::exec::{Interp, LFrame};
use crate::lower::{LProc, LProgram};
use crate::machine::Machine;
use crate::value::Data;
use clustersim::{Cluster, NetworkModel, Report, SimError, Trace};
use fir::ast::Program;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Final contents of one array (for output comparison).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDump {
    pub bounds: Vec<(i64, i64)>,
    pub data: Data,
}

/// Everything one rank produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RankOutput {
    /// Final state of every array in the main program, by name.
    pub arrays: BTreeMap<String, ArrayDump>,
    /// Lines produced by the `print` builtin.
    pub prints: Vec<String>,
}

/// Result of a full simulated run.
#[derive(Debug)]
pub struct RunResult {
    /// Per-rank outputs, indexed by rank.
    pub outputs: Vec<RankOutput>,
    pub report: Report,
    pub trace: Option<Trace>,
}

/// Errors from [`run_program`].
#[derive(Debug)]
pub enum RunError {
    /// The program failed validation.
    Invalid(fir::Errors),
    /// A rank failed at runtime (bounds, MPI misuse, deadlock…).
    Sim(SimError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Invalid(e) => write!(f, "validation failed: {e}"),
            RunError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

/// Validate and run `program` on `np` simulated ranks with default options.
pub fn run_program(
    program: &Program,
    np: usize,
    model: &NetworkModel,
) -> Result<RunResult, RunError> {
    run_program_opts(program, np, model, &Options::default())
}

/// Validate and run with explicit [`Options`].
pub fn run_program_opts(
    program: &Program,
    np: usize,
    model: &NetworkModel,
    opts: &Options,
) -> Result<RunResult, RunError> {
    compile_program(program, opts)?.run(np, model)
}

/// An immutable compiled program: validated, lowered to frame slots, and
/// (per the compile-time [`Options`]) optimized and type-specialized. The
/// payload is `Arc`-shared, so cloning a handle is cheap and a single
/// compilation can back every rank of every scenario that shares the
/// same compilation inputs — the cross-scenario hop of the same sharing
/// the ranks of one run already relied on. Handles are `Send + Sync`;
/// executing one never mutates it.
#[derive(Clone)]
pub struct CompiledProgram {
    lowered: Arc<LProgram>,
    /// The options the program was compiled under. Cost constants and the
    /// optimize/typed-chain switches are *baked in* at compile time (block
    /// charges are precomputed), so runs reuse the same options rather
    /// than accepting fresh ones that could disagree with the baked state.
    opts: Options,
}

impl std::fmt::Debug for CompiledProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledProgram")
            .field("procs", &self.lowered.procs.len())
            .field("opts", &self.opts)
            .finish()
    }
}

/// Validate `program` and compile it once: lower names to frame slots,
/// then (if `opts.optimize`) fold/unroll/hoist and summarize block costs.
/// The returned handle can be [run](CompiledProgram::run) any number of
/// times, on any `np` and any network model, with results byte-identical
/// to [`run_program_opts`] on the same inputs — compilation is a pure
/// function of (program, options) and execution never mutates the
/// compiled form.
pub fn compile_program(program: &Program, opts: &Options) -> Result<CompiledProgram, RunError> {
    fir::validate::validate(program).map_err(RunError::Invalid)?;

    // Resolve names to frame slots once; all ranks (and, via the sweep
    // compilation cache, all scenarios of a grid sharing this shape)
    // share the lowered program read-only.
    let mut lowered = crate::lower::lower(program);
    if opts.optimize {
        // Constant folding, loop-invariant hoisting, block-summarized
        // cost accounting — virtual times stay byte-identical (see
        // `opt`'s module docs and DESIGN.md §S3).
        crate::opt::optimize(&mut lowered, opts);
    }
    Ok(CompiledProgram {
        lowered: Arc::new(lowered),
        opts: opts.clone(),
    })
}

impl CompiledProgram {
    /// The options this program was compiled under (and will run under).
    pub fn options(&self) -> &Options {
        &self.opts
    }

    /// Run the compiled program on `np` simulated ranks. Repeated runs
    /// are independent and deterministic: virtual times, stats, outputs,
    /// and traces depend only on (compiled program, np, model).
    pub fn run(&self, np: usize, model: &NetworkModel) -> Result<RunResult, RunError> {
        let opts = &self.opts;
        let lowered: &LProgram = &self.lowered;
        let mut cluster = Cluster::new(np, model.clone());
        if opts.trace {
            cluster = cluster.traced();
        }
        let out = if opts.resumable {
            // Resumable engine: ranks are state machines driven by a bounded
            // worker set; any np runs on a fixed thread count.
            cluster.run_resumable(opts.rank_workers, |_| Machine::new(lowered, opts))?
        } else {
            // Thread-per-rank reference engine: byte-identical results
            // (pinned by tests/resumable_differential.rs).
            cluster.run(|comm| {
                let mut interp = Interp::new(lowered, opts);
                let (final_frame, main) = interp.run_main(comm);
                rank_output(&final_frame, main, std::mem::take(&mut interp.prints))
            })?
        };

        Ok(RunResult {
            outputs: out.results,
            report: out.report,
            trace: out.trace,
        })
    }
}

/// Dump one rank's final state, shared by both engines.
pub(crate) fn rank_output(frame: &LFrame, main: &LProc, prints: Vec<String>) -> RankOutput {
    let mut arrays = BTreeMap::new();
    for (name, binding) in frame.arrays(main) {
        let st = binding.handle.storage.borrow();
        arrays.insert(
            name.clone(),
            ArrayDump {
                bounds: binding.bounds().to_vec(),
                data: st.data.clone(),
            },
        );
    }
    RankOutput { arrays, prints }
}

/// Convenience for tests: parse, validate, run.
pub fn run_source(
    src: &str,
    np: usize,
    model: &NetworkModel,
) -> Result<RunResult, RunError> {
    let program = fir::parse(src).map_err(|e| RunError::Invalid(fir::Errors::single(e)))?;
    run_program(&program, np, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Scalar;

    fn gm() -> NetworkModel {
        NetworkModel::mpich_gm()
    }

    fn real_at(out: &RankOutput, array: &str, flat: usize) -> f64 {
        match &out.arrays[array].data {
            Data::Real(v) => v[flat],
            Data::Int(_) => panic!("expected real array"),
        }
    }

    fn int_at(out: &RankOutput, array: &str, flat: usize) -> i64 {
        match &out.arrays[array].data {
            Data::Int(v) => v[flat],
            Data::Real(_) => panic!("expected integer array"),
        }
    }

    #[test]
    fn sequential_kernel_computes() {
        let src = "\
program m
  real :: a(4)
  do i = 1, 4
    a(i) = i * 2 + 1
  end do
end program";
        let r = run_source(src, 1, &gm()).unwrap();
        assert_eq!(real_at(&r.outputs[0], "a", 0), 3.0);
        assert_eq!(real_at(&r.outputs[0], "a", 3), 9.0);
        assert!(r.report.per_rank[0].compute > clustersim::SimTime::ZERO);
    }

    #[test]
    fn integer_truncation_on_store() {
        let src = "\
program m
  integer :: a(2)
  a(1) = 7 / 2
  a(2) = int(3.9)
end program";
        let r = run_source(src, 1, &gm()).unwrap();
        assert_eq!(int_at(&r.outputs[0], "a", 0), 3);
        assert_eq!(int_at(&r.outputs[0], "a", 1), 3);
    }

    #[test]
    fn mynum_and_np_available() {
        let src = "\
program m
  integer :: a(2)
  a(1) = mynum
  a(2) = np
end program";
        let r = run_source(src, 3, &gm()).unwrap();
        for (rank, out) in r.outputs.iter().enumerate() {
            assert_eq!(int_at(out, "a", 0), rank as i64);
            assert_eq!(int_at(out, "a", 1), 3);
        }
    }

    #[test]
    fn if_and_loops_with_step() {
        let src = "\
program m
  integer :: a(10)
  do i = 1, 10, 3
    a(i) = 1
  end do
  if (a(4) == 1 .and. a(5) == 0) then
    a(10) = 42
  end if
end program";
        let r = run_source(src, 1, &gm()).unwrap();
        assert_eq!(int_at(&r.outputs[0], "a", 9), 42);
    }

    #[test]
    fn user_procedure_by_reference_arrays() {
        let src = "\
subroutine fill(n, at)
  integer :: n
  real :: at(n)
  do i = 1, n
    at(i) = i * 10
  end do
end subroutine

program m
  real :: buf(6)
  call fill(6, buf)
end program";
        let r = run_source(src, 1, &gm()).unwrap();
        assert_eq!(real_at(&r.outputs[0], "buf", 5), 60.0);
    }

    #[test]
    fn sequence_association_window() {
        // Pass a column of a 2-D array; callee sees a 1-D array of 3.
        let src = "\
subroutine fill3(at)
  real :: at(3)
  do i = 1, 3
    at(i) = i
  end do
end subroutine

program m
  real :: grid(3, 2)
  call fill3(grid(:, 2))
end program";
        let r = run_source(src, 1, &gm()).unwrap();
        // Column 2 occupies flat 3..6.
        assert_eq!(real_at(&r.outputs[0], "grid", 3), 1.0);
        assert_eq!(real_at(&r.outputs[0], "grid", 5), 3.0);
        assert_eq!(real_at(&r.outputs[0], "grid", 0), 0.0);
    }

    #[test]
    fn alltoall_moves_data() {
        let src = "\
program m
  integer :: s(4), r(4)
  do i = 1, 4
    s(i) = mynum * 100 + i
  end do
  call mpi_alltoall(s, 2, r)
end program";
        let out = run_source(src, 2, &gm()).unwrap();
        // Rank 1 receives rank 0's second block [3, 4]... r = [s0(3..4)? ]
        // count=2: rank r gets from src s elements s*100 + (r*2+1, r*2+2).
        assert_eq!(int_at(&out.outputs[1], "r", 0), 3);
        assert_eq!(int_at(&out.outputs[1], "r", 1), 4);
        assert_eq!(int_at(&out.outputs[1], "r", 2), 103);
        assert_eq!(int_at(&out.outputs[1], "r", 3), 104);
        assert_eq!(int_at(&out.outputs[0], "r", 2), 101);
    }

    #[test]
    fn isend_irecv_roundtrip_with_sections() {
        let src = "\
program m
  real :: s(8), r(8)
  do i = 1, 8
    s(i) = mynum + i * 0.5
  end do
  if (mynum == 0) then
    call mpi_isend(s(3:6), 4, 1, 7)
    call mpi_irecv(r(1:4), 4, 1, 9)
  else
    call mpi_isend(s(1:4), 4, 0, 9)
    call mpi_irecv(r(5:8), 4, 0, 7)
  end if
  call mpi_waitall()
end program";
        let out = run_source(src, 2, &gm()).unwrap();
        // Rank 1 received rank 0's s(3:6) = 1.5, 2.0, 2.5, 3.0 into r(5:8).
        assert_eq!(real_at(&out.outputs[1], "r", 4), 1.5);
        assert_eq!(real_at(&out.outputs[1], "r", 7), 3.0);
        // Rank 0 received rank 1's s(1:4) = 1.5, 2.0, 2.5, 3.0 into r(1:4).
        assert_eq!(real_at(&out.outputs[0], "r", 0), 1.5);
    }

    #[test]
    fn print_captured_per_rank() {
        let src = "\
program m
  call print(mynum, 2 + 2)
end program";
        let r = run_source(src, 2, &gm()).unwrap();
        assert_eq!(r.outputs[0].prints, vec!["0 4"]);
        assert_eq!(r.outputs[1].prints, vec!["1 4"]);
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let src = "\
program m
  real :: a(4)
  a(5) = 1
end program";
        let err = run_source(src, 1, &gm()).unwrap_err();
        match err {
            RunError::Sim(SimError::RankPanic { message, .. }) => {
                assert!(message.contains("out of bounds"), "{message}");
            }
            other => panic!("expected rank panic, got {other:?}"),
        }
    }

    #[test]
    fn non_contiguous_section_rejected() {
        let src = "\
program m
  real :: a(4, 4)
  call mpi_isend(a(1:2, 1:2), 4, 1, 0)
end program";
        let err = run_source(src, 2, &gm()).unwrap_err();
        match err {
            RunError::Sim(SimError::RankPanic { message, .. }) => {
                assert!(message.contains("not contiguous"), "{message}");
            }
            other => panic!("expected rank panic, got {other:?}"),
        }
    }

    #[test]
    fn validation_failure_surfaces() {
        let err = run_source("program m\n  np = 3\nend program", 1, &gm()).unwrap_err();
        assert!(matches!(err, RunError::Invalid(_)));
    }

    #[test]
    fn buffer_reuse_detected_when_enabled() {
        // Overwrite the sent region immediately after isend, before any
        // wait: a classic MPI bug the indirect-pattern expansion avoids.
        let src = "\
program m
  real :: s(1024)
  do i = 1, 1024
    s(i) = i
  end do
  if (mynum == 0) then
    call mpi_isend(s(1:1024), 1024, 1, 0)
    s(1) = -1
    call mpi_waitall()
  else
    call mpi_irecv(s(1:1024), 1024, 0, 0)
    call mpi_waitall()
  end if
end program";
        let program = fir::parse(src).unwrap();
        let err =
            run_program_opts(&program, 2, &gm(), &Options::strict()).unwrap_err();
        match err {
            RunError::Sim(SimError::RankPanic { message, rank }) => {
                assert_eq!(rank, 0);
                assert!(message.contains("buffer-reuse hazard"), "{message}");
            }
            other => panic!("expected rank panic, got {other:?}"),
        }
        // Default options tolerate it (snapshot-at-send semantics).
        assert!(run_program_opts(&program, 2, &gm(), &Options::default()).is_ok());
    }

    #[test]
    fn deterministic_outputs_and_times() {
        let src = "\
program m
  real :: s(16), r(16)
  do i = 1, 16
    s(i) = mynum * 16 + i
  end do
  call mpi_alltoall(s, 4, r)
  do i = 1, 16
    s(i) = r(i) * 2
  end do
end program";
        let a = run_source(src, 4, &gm()).unwrap();
        let b = run_source(src, 4, &gm()).unwrap();
        assert_eq!(a.outputs, b.outputs);
        let ta: Vec<_> = a.report.per_rank.iter().map(|r| r.finish).collect();
        let tb: Vec<_> = b.report.per_rank.iter().map(|r| r.finish).collect();
        assert_eq!(ta, tb);
    }

    #[test]
    fn compiled_program_reruns_byte_identically() {
        // One compilation handle, many runs, across np and models —
        // everything must match the compile-each-time path exactly.
        let src = "\
program m
  real :: s(16), r(16)
  do i = 1, 16
    s(i) = mynum * 16 + i
  end do
  call mpi_alltoall(s, 4, r)
  do i = 1, 16
    s(i) = r(i) * 2
  end do
end program";
        let program = fir::parse(src).unwrap();
        let opts = Options::default();
        let compiled = compile_program(&program, &opts).unwrap();
        let cloned = compiled.clone(); // cheap Arc clone, same payload
        for np in [2usize, 4] {
            for model in [NetworkModel::mpich(), NetworkModel::mpich_gm()] {
                let fresh = run_program_opts(&program, np, &model, &opts).unwrap();
                let a = compiled.run(np, &model).unwrap();
                let b = cloned.run(np, &model).unwrap();
                assert_eq!(a.outputs, fresh.outputs);
                assert_eq!(b.outputs, fresh.outputs);
                let t = |r: &RunResult| -> Vec<_> {
                    r.report.per_rank.iter().map(|p| p.finish).collect()
                };
                assert_eq!(t(&a), t(&fresh));
                assert_eq!(t(&b), t(&fresh));
            }
        }
        assert!(compiled.options().optimize);
    }

    #[test]
    fn compile_rejects_invalid_programs() {
        let program = fir::parse("program m\n  np = 3\nend program").unwrap();
        assert!(matches!(
            compile_program(&program, &Options::default()),
            Err(RunError::Invalid(_))
        ));
    }

    #[test]
    fn compiled_handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledProgram>();
    }

    #[test]
    fn scalar_zero_initialization() {
        let src = "\
program m
  integer :: n
  integer :: a(1)
  a(1) = n + undeclared_int_j
end program";
        let r = run_source(src, 1, &gm()).unwrap();
        // Both default to 0 — wait, `undeclared_int_j` starts with 'u',
        // implicit REAL, so the sum promotes and truncates back on store.
        assert_eq!(int_at(&r.outputs[0], "a", 0), 0);
        let _ = Scalar::Int(0);
    }
}
