//! Static type inference over the lowered program, feeding the typed
//! chain instructions ([`crate::lower::ChainTy`]).
//!
//! Every storage location in mini-Fortran is monomorphic by construction:
//! every store converts the value to the slot's declared (or implicit)
//! type, array storage is homogeneous, and hoist slots cache one fixed
//! expression. So "inference" is seeding slot types from
//! `scalar_defaults`/`array_decls` and computing expression types
//! bottom-up with the promotion rules in [`analyzer::types`] — which
//! mirror `exec::try_binop`/`try_intrinsic` exactly. A chain instruction
//! whose accumulator provably keeps one runtime tag is marked `Int` or
//! `Real` and the executor runs a typed accumulator loop instead of
//! per-operation tag dispatch; anything unprovable stays `Dyn`.
//!
//! The verdicts are conservative *and* double-checked: the typed loops in
//! `exec` still inspect the fetched tags and fall back to the generic
//! evaluator on any mismatch (re-fetching is pure), so a wrong verdict
//! could only cost speed, never change a result.

use crate::lower::{ChainTy, Instr, Intr, LExpr, LProc, LProgram, LStmt, Operand};
use analyzer::types::{binop_ty, intrinsic_ty, unop_ty, ProcTypes, Ty, TypeReport};
use fir::ast::BinOp;

/// Owned slot-type tables for one procedure.
pub(crate) struct ProcTyEnv {
    /// Scalar slot -> type (from the typed zero defaults).
    pub scalars: Vec<Ty>,
    /// Array slot -> element type (from the declarations).
    pub arrays: Vec<Ty>,
    /// Hoist slot -> type of the cached expression, filled in statement
    /// order as the annotation walk encounters each loop's hoists.
    pub hoists: Vec<Ty>,
}

impl ProcTyEnv {
    pub fn new(proc: &LProc) -> Self {
        let scalars = proc
            .scalar_defaults
            .iter()
            .map(|s| Ty::of_scalar_type(s.ty()))
            .collect();
        let mut arrays = vec![Ty::Unknown; proc.array_names.len()];
        for d in &proc.array_decls {
            arrays[d.slot as usize] = Ty::of_scalar_type(d.ty);
        }
        ProcTyEnv {
            scalars,
            arrays,
            hoists: vec![Ty::Unknown; proc.hoist_slots],
        }
    }
}

fn intr_rule_name(op: Intr) -> Option<&'static str> {
    Some(match op {
        Intr::Mod => "mod",
        Intr::Min => "min",
        Intr::Max => "max",
        Intr::Abs => "abs",
        Intr::Sqrt => "sqrt",
        Intr::Sin => "sin",
        Intr::Cos => "cos",
        Intr::Exp => "exp",
        Intr::Log => "log",
        Intr::Floor => "floor",
        Intr::Int => "int",
        Intr::Real => "real",
        Intr::Unknown => return None,
    })
}

pub(crate) fn lexpr_ty(e: &LExpr, env: &ProcTyEnv) -> Ty {
    match e {
        LExpr::Int(_) => Ty::Int,
        LExpr::Real(_) => Ty::Real,
        LExpr::Const { v, .. } => Ty::of_scalar_type(v.ty()),
        LExpr::Var(slot) => env.scalars[*slot as usize].clone(),
        LExpr::Hoisted { slot, .. } => env.hoists[*slot as usize].clone(),
        LExpr::ArrayRef { slot, .. } => match slot {
            Some(s) => env.arrays[*s as usize].clone(),
            None => Ty::Unknown,
        },
        LExpr::Intrinsic { op, args, .. } => match intr_rule_name(*op) {
            Some(name) => {
                let tys: Vec<Ty> = args.iter().map(|a| lexpr_ty(a, env)).collect();
                intrinsic_ty(name, &tys)
            }
            None => Ty::Unknown,
        },
        LExpr::Unary { op, operand } => unop_ty(*op, &lexpr_ty(operand, env)),
        LExpr::Binary { op, lhs, rhs } => {
            binop_ty(*op, &lexpr_ty(lhs, env), &lexpr_ty(rhs, env))
        }
    }
}

pub(crate) fn operand_ty(o: &Operand, env: &ProcTyEnv) -> Ty {
    match o {
        Operand::Const(v) => Ty::of_scalar_type(v.ty()),
        Operand::Var(slot) => env.scalars[*slot as usize].clone(),
        Operand::Hoisted(slot) => env.hoists[*slot as usize].clone(),
        Operand::Load { slot, .. } => env.arrays[*slot as usize].clone(),
        Operand::LoadErr { .. } => Ty::Unknown,
        Operand::Un { op, operand } => unop_ty(*op, &operand_ty(operand, env)),
        Operand::Bin { op, a, b } => binop_ty(*op, &operand_ty(a, env), &operand_ty(b, env)),
        Operand::Intr { op, args, .. } => match intr_rule_name(*op) {
            Some(name) => {
                let tys: Vec<Ty> = args.iter().map(|a| operand_ty(a, env)).collect();
                intrinsic_ty(name, &tys)
            }
            None => Ty::Unknown,
        },
    }
}

/// Classify one chain. `Real` needs only the *first* operand to be a
/// real and every operator to be `+ - * /`: once the accumulator is
/// real, `eval_binop` promotes any right operand — so the typed f64 loop
/// is bit-identical regardless of the operands' tags. `Int` needs every
/// operand provably integer and operators within `+ - *` (integer
/// division and `**` can error and stay on the general path).
pub(crate) fn chain_mono(first: &Operand, rest: &[(BinOp, Operand)], env: &ProcTyEnv) -> ChainTy {
    use BinOp::*;
    if rest.is_empty() {
        // A bare store: no operator dispatch to skip.
        return ChainTy::Dyn;
    }
    let first_ty = operand_ty(first, env);
    if first_ty == Ty::Real && rest.iter().all(|(op, _)| matches!(op, Add | Sub | Mul | Div)) {
        return ChainTy::Real;
    }
    if first_ty == Ty::Int
        && rest.iter().all(|(op, o)| {
            matches!(op, Add | Sub | Mul) && operand_ty(o, env) == Ty::Int
        })
    {
        return ChainTy::Int;
    }
    ChainTy::Dyn
}

/// Annotate every chain instruction in `proc` with its monomorphism
/// verdict. Returns `(typed, dynamic)` chain counts.
pub(crate) fn annotate_proc(proc: &mut LProc) -> (usize, usize) {
    let mut env = ProcTyEnv::new(proc);
    let mut counts = (0usize, 0usize);
    let mut body = std::mem::take(&mut proc.body);
    annotate_stmts(&mut body, &mut env, &mut counts);
    proc.body = body;
    counts
}

fn annotate_stmts(stmts: &mut [LStmt], env: &mut ProcTyEnv, counts: &mut (usize, usize)) {
    for s in stmts {
        match s {
            LStmt::Do { body, hoists, .. } => {
                // Hoists evaluate at loop entry, before the body — type
                // them first so body chains can use their slots.
                for h in hoists.iter() {
                    let t = lexpr_ty(&h.expr, env);
                    env.hoists[h.slot as usize] = t;
                }
                annotate_stmts(body, env, counts);
            }
            LStmt::If {
                then_body,
                else_body,
                ..
            } => {
                annotate_stmts(then_body, env, counts);
                annotate_stmts(else_body, env, counts);
            }
            LStmt::Block { code, .. } => {
                for ins in code {
                    match ins {
                        Instr::ChainScalar {
                            first, rest, mono, ..
                        }
                        | Instr::ChainArray {
                            first, rest, mono, ..
                        } => {
                            *mono = chain_mono(first, rest, env);
                            if *mono == ChainTy::Dyn {
                                counts.1 += 1;
                            } else {
                                counts.0 += 1;
                            }
                        }
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
}

fn count_chains(stmts: &[LStmt], counts: &mut (usize, usize)) {
    for s in stmts {
        match s {
            LStmt::Do { body, .. } => count_chains(body, counts),
            LStmt::If {
                then_body,
                else_body,
                ..
            } => {
                count_chains(then_body, counts);
                count_chains(else_body, counts);
            }
            LStmt::Block { code, .. } => {
                for ins in code {
                    if let Instr::ChainScalar { mono, .. } | Instr::ChainArray { mono, .. } = ins
                    {
                        if *mono == ChainTy::Dyn {
                            counts.1 += 1;
                        } else {
                            counts.0 += 1;
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

/// Infer slot-level types for `program` and report how many chain
/// instructions the optimizer could specialize. Runs the same lowering
/// and optimization pipeline as execution (with default options), so the
/// counts are exactly what [`crate::run_program`] runs.
pub fn analyze_types(program: &fir::ast::Program) -> Result<TypeReport, fir::Errors> {
    fir::validate::validate(program)?;
    let mut lowered = crate::lower::lower(program);
    crate::opt::optimize(&mut lowered, &crate::cost::Options::default());
    Ok(report_of(&lowered))
}

fn report_of(program: &LProgram) -> TypeReport {
    let mut report = TypeReport::default();
    for proc in &program.procs {
        let env = ProcTyEnv::new(proc);
        let mut counts = (0usize, 0usize);
        count_chains(&proc.body, &mut counts);
        report.procs.push(ProcTypes {
            name: proc.name.clone(),
            scalars: proc
                .scalar_names
                .iter()
                .cloned()
                .zip(env.scalars.iter().cloned())
                .collect(),
            arrays: proc
                .array_names
                .iter()
                .cloned()
                .zip(env.arrays.iter().map(|t| Ty::Array(Box::new(t.clone()))))
                .collect(),
            chains_typed: counts.0,
            chains_dyn: counts.1,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_chains_are_typed() {
        let src = "program m\n\
                   real :: a(16)\n\
                   do i = 1, 16\n\
                   t = 0.0\n\
                   do j = 1, 8\n\
                   t = t + i * j + 0.5\n\
                   end do\n\
                   a(i) = t * 0.5 + i\n\
                   end do\n\
                   end program";
        let program = fir::parse_validated(src).unwrap();
        let report = analyze_types(&program).unwrap();
        assert!(
            report.chains_typed() > 0,
            "real accumulator chains should specialize: {report:?}"
        );
        let main = &report.procs[0];
        let t = main.scalars.iter().find(|(n, _)| n == "t").unwrap();
        assert_eq!(t.1, Ty::Real);
        let i = main.scalars.iter().find(|(n, _)| n == "i").unwrap();
        assert_eq!(i.1, Ty::Int);
        let a = main.arrays.iter().find(|(n, _)| n == "a").unwrap();
        assert_eq!(a.1, Ty::Array(Box::new(Ty::Real)));
    }

    #[test]
    fn integer_division_chain_stays_dynamic() {
        // i / j can raise "integer division by zero" — the typed int loop
        // excludes Div, so this chain must stay on the general path.
        let src = "program m\n\
                   integer :: k(8)\n\
                   do i = 1, 8\n\
                   k(i) = i * 3 - i / 2\n\
                   end do\n\
                   end program";
        let program = fir::parse_validated(src).unwrap();
        let report = analyze_types(&program).unwrap();
        assert_eq!(report.chains_typed(), 0, "{report:?}");
    }

    #[test]
    fn type_report_is_monomorphic_per_slot() {
        let src = "program m\n\
                   x = 1.5\n\
                   n = 3\n\
                   end program";
        let program = fir::parse_validated(src).unwrap();
        let report = analyze_types(&program).unwrap();
        let main = &report.procs[0];
        // Implicit typing: x -> real, n -> integer.
        assert!(main.scalars.iter().any(|(n, t)| n == "x" && *t == Ty::Real));
        assert!(main.scalars.iter().any(|(n, t)| n == "n" && *t == Ty::Int));
    }
}
