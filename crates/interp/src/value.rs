//! Runtime values: scalars and column-major array storage.

use fir::ast::ScalarType;
use std::fmt;

/// A scalar runtime value. Integer→real promotion happens at use sites;
/// real→integer requires an explicit `int()`/`floor()` in the source except
/// when storing into an integer array/variable (Fortran truncation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scalar {
    Int(i64),
    Real(f64),
}

impl Scalar {
    pub fn ty(self) -> ScalarType {
        match self {
            Scalar::Int(_) => ScalarType::Integer,
            Scalar::Real(_) => ScalarType::Real,
        }
    }

    pub fn as_real(self) -> f64 {
        match self {
            Scalar::Int(v) => v as f64,
            Scalar::Real(v) => v,
        }
    }

    /// Integer view; reals truncate toward zero (Fortran assignment rule).
    pub fn truncate_to_int(self) -> i64 {
        match self {
            Scalar::Int(v) => v,
            Scalar::Real(v) => v.trunc() as i64,
        }
    }

    /// Strict integer view for contexts that must be integers (subscripts,
    /// bounds, ranks, tags) — validation guarantees these, so a real here
    /// is an interpreter bug, not a user error.
    pub fn expect_int(self, what: &str) -> i64 {
        match self {
            Scalar::Int(v) => v,
            Scalar::Real(v) => panic!("{what}: expected integer, got real {v}"),
        }
    }

    /// Coerce to the given storage type (Fortran assignment conversion).
    pub fn convert_to(self, ty: ScalarType) -> Scalar {
        match ty {
            ScalarType::Integer => Scalar::Int(self.truncate_to_int()),
            ScalarType::Real => Scalar::Real(self.as_real()),
        }
    }

    pub fn is_true(self) -> bool {
        match self {
            Scalar::Int(v) => v != 0,
            Scalar::Real(v) => v != 0.0,
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Int(v) => write!(f, "{v}"),
            Scalar::Real(v) => write!(f, "{v:?}"),
        }
    }
}

/// Homogeneous element storage.
#[derive(Debug, Clone, PartialEq)]
pub enum Data {
    Int(Vec<i64>),
    Real(Vec<f64>),
}

impl Data {
    pub fn zeros(ty: ScalarType, len: usize) -> Data {
        match ty {
            ScalarType::Integer => Data::Int(vec![0; len]),
            ScalarType::Real => Data::Real(vec![0.0; len]),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            Data::Int(v) => v.len(),
            Data::Real(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn ty(&self) -> ScalarType {
        match self {
            Data::Int(_) => ScalarType::Integer,
            Data::Real(_) => ScalarType::Real,
        }
    }

    pub fn get(&self, i: usize) -> Scalar {
        match self {
            Data::Int(v) => Scalar::Int(v[i]),
            Data::Real(v) => Scalar::Real(v[i]),
        }
    }

    pub fn set(&mut self, i: usize, s: Scalar) {
        match self {
            Data::Int(v) => v[i] = s.truncate_to_int(),
            Data::Real(v) => v[i] = s.as_real(),
        }
    }
}

/// A column-major array with Fortran bounds `lower..=upper` per dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayStorage {
    pub name: String,
    bounds: Vec<(i64, i64)>,
    /// Column-major strides (stride[0] == 1).
    strides: Vec<usize>,
    pub data: Data,
}

/// Subscript errors become rank panics with this context attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundsError {
    pub array: String,
    pub dim: usize,
    pub index: i64,
    pub lower: i64,
    pub upper: i64,
}

impl fmt::Display for BoundsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "subscript {} of `{}` out of bounds in dimension {}: valid {}..={}",
            self.index,
            self.array,
            self.dim + 1,
            self.lower,
            self.upper
        )
    }
}

impl ArrayStorage {
    pub fn new(name: &str, ty: ScalarType, bounds: Vec<(i64, i64)>) -> ArrayStorage {
        let mut strides = Vec::with_capacity(bounds.len());
        let mut acc: usize = 1;
        for &(lo, hi) in &bounds {
            strides.push(acc);
            let extent = (hi - lo + 1).max(0) as usize;
            acc = acc.checked_mul(extent).expect("array too large");
        }
        ArrayStorage {
            name: name.to_string(),
            bounds,
            strides,
            data: Data::zeros(ty, acc),
        }
    }

    pub fn rank(&self) -> usize {
        self.bounds.len()
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn ty(&self) -> ScalarType {
        self.data.ty()
    }

    pub fn bounds(&self) -> &[(i64, i64)] {
        &self.bounds
    }

    pub fn extent(&self, dim: usize) -> usize {
        let (lo, hi) = self.bounds[dim];
        (hi - lo + 1).max(0) as usize
    }

    /// Column-major flat offset of a subscript vector.
    pub fn flat_index(&self, indices: &[i64]) -> Result<usize, BoundsError> {
        assert_eq!(
            indices.len(),
            self.bounds.len(),
            "rank mismatch on `{}` (validated earlier)",
            self.name
        );
        let mut off = 0usize;
        for (d, (&ix, &(lo, hi))) in indices.iter().zip(&self.bounds).enumerate() {
            if ix < lo || ix > hi {
                return Err(BoundsError {
                    array: self.name.clone(),
                    dim: d,
                    index: ix,
                    lower: lo,
                    upper: hi,
                });
            }
            off += (ix - lo) as usize * self.strides[d];
        }
        Ok(off)
    }

    pub fn get(&self, indices: &[i64]) -> Result<Scalar, BoundsError> {
        Ok(self.data.get(self.flat_index(indices)?))
    }

    pub fn set(&mut self, indices: &[i64], v: Scalar) -> Result<(), BoundsError> {
        let i = self.flat_index(indices)?;
        self.data.set(i, v);
        Ok(())
    }

    /// Encode `count` elements starting at flat offset as little-endian
    /// 8-byte words.
    pub fn encode(&self, offset: usize, count: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(count * 8);
        match &self.data {
            Data::Int(v) => {
                for x in &v[offset..offset + count] {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            Data::Real(v) => {
                for x in &v[offset..offset + count] {
                    out.extend_from_slice(&x.to_bits().to_le_bytes());
                }
            }
        }
        out
    }

    /// Decode bytes produced by [`encode`](Self::encode) into elements
    /// starting at flat offset. The wire format is raw 8-byte words; the
    /// *receiver's* element type interprets them (DESIGN.md §2 notes this
    /// matches Fortran/MPI untyped-buffer behaviour).
    pub fn decode_into(&mut self, offset: usize, bytes: &[u8]) {
        assert_eq!(bytes.len() % 8, 0, "payload not 8-byte aligned");
        let count = bytes.len() / 8;
        match &mut self.data {
            Data::Int(v) => {
                for (i, w) in bytes.chunks_exact(8).enumerate() {
                    v[offset + i] = i64::from_le_bytes(w.try_into().expect("8-byte chunk"));
                }
            }
            Data::Real(v) => {
                for (i, w) in bytes.chunks_exact(8).enumerate() {
                    v[offset + i] = f64::from_bits(u64::from_le_bytes(
                        w.try_into().expect("8-byte chunk"),
                    ));
                }
            }
        }
        let _ = count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_conversions() {
        assert_eq!(Scalar::Int(3).as_real(), 3.0);
        assert_eq!(Scalar::Real(3.9).truncate_to_int(), 3);
        assert_eq!(Scalar::Real(-3.9).truncate_to_int(), -3);
        assert_eq!(
            Scalar::Real(2.5).convert_to(ScalarType::Integer),
            Scalar::Int(2)
        );
        assert!(Scalar::Int(1).is_true());
        assert!(!Scalar::Int(0).is_true());
    }

    #[test]
    fn column_major_layout() {
        // a(1:2, 1:3): strides (1, 2); a(2,1) is flat 1, a(1,2) is flat 2.
        let a = ArrayStorage::new("a", ScalarType::Integer, vec![(1, 2), (1, 3)]);
        assert_eq!(a.len(), 6);
        assert_eq!(a.flat_index(&[1, 1]).unwrap(), 0);
        assert_eq!(a.flat_index(&[2, 1]).unwrap(), 1);
        assert_eq!(a.flat_index(&[1, 2]).unwrap(), 2);
        assert_eq!(a.flat_index(&[2, 3]).unwrap(), 5);
    }

    #[test]
    fn custom_lower_bounds() {
        let a = ArrayStorage::new("a", ScalarType::Real, vec![(0, 4)]);
        assert_eq!(a.len(), 5);
        assert_eq!(a.flat_index(&[0]).unwrap(), 0);
        assert_eq!(a.flat_index(&[4]).unwrap(), 4);
    }

    #[test]
    fn bounds_violation_reported() {
        let a = ArrayStorage::new("a", ScalarType::Integer, vec![(1, 4)]);
        let err = a.flat_index(&[5]).unwrap_err();
        assert_eq!(err.index, 5);
        assert_eq!(err.upper, 4);
        assert!(err.to_string().contains("`a`"));
    }

    #[test]
    fn get_set_roundtrip() {
        let mut a = ArrayStorage::new("a", ScalarType::Real, vec![(1, 3)]);
        a.set(&[2], Scalar::Real(2.5)).unwrap();
        assert_eq!(a.get(&[2]).unwrap(), Scalar::Real(2.5));
        // Integer stored into real array promotes.
        a.set(&[1], Scalar::Int(7)).unwrap();
        assert_eq!(a.get(&[1]).unwrap(), Scalar::Real(7.0));
    }

    #[test]
    fn encode_decode_real() {
        let mut a = ArrayStorage::new("a", ScalarType::Real, vec![(1, 4)]);
        for i in 1..=4 {
            a.set(&[i], Scalar::Real(i as f64 * 1.5)).unwrap();
        }
        let bytes = a.encode(1, 2); // elements 2 and 3
        let mut b = ArrayStorage::new("b", ScalarType::Real, vec![(1, 4)]);
        b.decode_into(2, &bytes);
        assert_eq!(b.get(&[3]).unwrap(), Scalar::Real(3.0));
        assert_eq!(b.get(&[4]).unwrap(), Scalar::Real(4.5));
    }

    #[test]
    fn encode_decode_int() {
        let mut a = ArrayStorage::new("a", ScalarType::Integer, vec![(1, 3)]);
        a.set(&[1], Scalar::Int(-9)).unwrap();
        let bytes = a.encode(0, 1);
        let mut b = ArrayStorage::new("b", ScalarType::Integer, vec![(1, 3)]);
        b.decode_into(1, &bytes);
        assert_eq!(b.get(&[2]).unwrap(), Scalar::Int(-9));
    }

    #[test]
    fn zero_extent_dimension() {
        let a = ArrayStorage::new("a", ScalarType::Integer, vec![(1, 0)]);
        assert_eq!(a.len(), 0);
        assert!(a.flat_index(&[1]).is_err());
    }
}
