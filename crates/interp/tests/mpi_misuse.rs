//! MPI misuse must fail loudly with actionable messages — never silently
//! corrupt data or hang forever.

use clustersim::{NetworkModel, SimError};
use interp::{run_source, RunError};

fn expect_rank_panic(src: &str, np: usize, needle: &str) {
    let err = run_source(src, np, &NetworkModel::mpich_gm()).unwrap_err();
    match err {
        RunError::Sim(SimError::RankPanic { message, .. }) => {
            assert!(message.contains(needle), "wanted {needle:?} in: {message}");
        }
        other => panic!("expected rank panic, got {other}"),
    }
}

#[test]
fn self_send_rejected() {
    expect_rank_panic(
        "program m\n  real :: s(4)\n  call mpi_isend(s(1:4), 4, mynum, 0)\nend program",
        2,
        "self-send",
    );
}

#[test]
fn self_receive_rejected() {
    expect_rank_panic(
        "program m\n  real :: s(4)\n  call mpi_irecv(s(1:4), 4, mynum, 0)\nend program",
        2,
        "self-receive",
    );
}

#[test]
fn destination_out_of_range() {
    expect_rank_panic(
        "program m\n  real :: s(4)\n  call mpi_isend(s(1:4), 4, 7, 0)\nend program",
        2,
        "out of range",
    );
}

#[test]
fn count_exceeding_buffer_rejected() {
    expect_rank_panic(
        "program m\n  real :: s(4)\n  call mpi_isend(s(1:4), 9, 1 - mynum, 0)\nend program",
        2,
        "exceeds buffer window",
    );
}

#[test]
fn alltoall_send_buffer_too_small() {
    expect_rank_panic(
        "program m\n  real :: s(4), r(16)\n  call mpi_alltoall(s, 4, r)\nend program",
        4,
        "need 16 elements in send buffer",
    );
}

#[test]
fn alltoall_recv_buffer_too_small() {
    expect_rank_panic(
        "program m\n  real :: s(16), r(4)\n  call mpi_alltoall(s, 4, r)\nend program",
        4,
        "need 16 elements in recv buffer",
    );
}

#[test]
fn size_mismatched_point_to_point_detected() {
    // Sender ships 2 elements; receiver expects 4.
    let src = "\
program m
  real :: s(4), r(4)
  if (mynum == 0) then
    call mpi_isend(s(1:2), 2, 1, 0)
    call mpi_waitall()
  else
    call mpi_irecv(r(1:4), 4, 0, 0)
    call mpi_waitall()
  end if
end program";
    expect_rank_panic(src, 2, "expected 4 elements");
}

#[test]
fn collective_mismatch_detected() {
    // Rank 0 calls barrier while rank 1 calls alltoall at the same
    // collective index: a program error the simulator names explicitly.
    let src = "\
program m
  real :: s(8), r(8)
  if (mynum == 0) then
    call mpi_barrier()
  else
    call mpi_alltoall(s, 4, r)
  end if
end program";
    let err = run_source(src, 2, &NetworkModel::mpich_gm()).unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("collective mismatch"), "{msg}");
}

#[test]
fn negative_count_rejected() {
    expect_rank_panic(
        "program m\n  real :: s(4), r(4)\n  n = 0 - 1\n  call mpi_isend(s(1:4), n, 1 - mynum, 0)\nend program",
        2,
        "count",
    );
}
