//! Language-semantics tests: every intrinsic, Fortran typing rules, loop
//! semantics, and procedure-call corner cases, each verified through a
//! complete parse → validate → simulate run.

use clustersim::NetworkModel;
use interp::{run_source, Data, RunError};

fn run1(src: &str) -> interp::RankOutput {
    run_source(src, 1, &NetworkModel::mpich_gm())
        .unwrap_or_else(|e| panic!("{e}\n---\n{src}"))
        .outputs
        .remove(0)
}

fn reals(out: &interp::RankOutput, name: &str) -> Vec<f64> {
    match &out.arrays[name].data {
        Data::Real(v) => v.clone(),
        Data::Int(_) => panic!("expected real array `{name}`"),
    }
}

fn ints(out: &interp::RankOutput, name: &str) -> Vec<i64> {
    match &out.arrays[name].data {
        Data::Int(v) => v.clone(),
        Data::Real(_) => panic!("expected integer array `{name}`"),
    }
}

#[test]
fn trigonometry_and_transcendentals() {
    let out = run1(
        "program m\n  real :: a(5)\n  a(1) = sin(0.0)\n  a(2) = cos(0.0)\n  a(3) = exp(1.0)\n  a(4) = log(exp(2.0))\n  a(5) = sqrt(16.0)\nend program",
    );
    let a = reals(&out, "a");
    assert_eq!(a[0], 0.0);
    assert_eq!(a[1], 1.0);
    assert!((a[2] - std::f64::consts::E).abs() < 1e-12);
    assert!((a[3] - 2.0).abs() < 1e-12);
    assert_eq!(a[4], 4.0);
}

#[test]
fn min_max_mixed_types_promote() {
    let out = run1(
        "program m\n  real :: a(2)\n  integer :: b(2)\n  a(1) = min(3, 2.5)\n  a(2) = max(1, 2, 3.5)\n  b(1) = min(7, 4, 9)\n  b(2) = max(7, 4, 9)\nend program",
    );
    assert_eq!(reals(&out, "a"), vec![2.5, 3.5]);
    assert_eq!(ints(&out, "b"), vec![4, 9]);
}

#[test]
fn abs_floor_int_real_conversions() {
    let out = run1(
        "program m\n  integer :: b(4)\n  real :: a(2)\n  b(1) = abs(-7)\n  b(2) = floor(2.9)\n  b(3) = floor(-2.1)\n  b(4) = int(-2.9)\n  a(1) = abs(-2.5)\n  a(2) = real(3)\nend program",
    );
    assert_eq!(ints(&out, "b"), vec![7, 2, -3, -2]);
    assert_eq!(reals(&out, "a"), vec![2.5, 3.0]);
}

#[test]
fn mod_follows_fortran_sign_rule() {
    // Fortran MOD takes the sign of the dividend.
    let out = run1(
        "program m\n  integer :: b(4)\n  b(1) = mod(7, 3)\n  b(2) = mod(-7, 3)\n  b(3) = mod(7, -3)\n  b(4) = mod(-7, -3)\nend program",
    );
    assert_eq!(ints(&out, "b"), vec![1, -1, 1, -1]);
}

#[test]
fn integer_power_semantics() {
    let out = run1(
        "program m\n  integer :: b(4)\n  real :: a(1)\n  b(1) = 2**10\n  b(2) = (-2)**3\n  b(3) = 2**0\n  b(4) = 2**(-1)\n  a(1) = 2.0**(-1)\nend program",
    );
    assert_eq!(ints(&out, "b"), vec![1024, -8, 1, 0]);
    assert_eq!(reals(&out, "a"), vec![0.5]);
}

#[test]
fn negative_step_loop_runs_downward() {
    let out = run1(
        "program m\n  integer :: b(5)\n  n = 0\n  do i = 5, 1, -1\n    n = n + 1\n    b(n) = i\n  end do\nend program",
    );
    assert_eq!(ints(&out, "b"), vec![5, 4, 3, 2, 1]);
}

#[test]
fn zero_trip_loop_body_never_runs() {
    let out = run1(
        "program m\n  integer :: b(1)\n  b(1) = 9\n  do i = 5, 1\n    b(1) = 0\n  end do\nend program",
    );
    assert_eq!(ints(&out, "b"), vec![9]);
}

#[test]
fn loop_bounds_evaluated_once() {
    // Fortran evaluates bounds at entry; mutating `n` inside must not
    // change the trip count.
    let out = run1(
        "program m\n  integer :: b(1), n\n  n = 3\n  do i = 1, n\n    n = 100\n    b(1) = b(1) + 1\n  end do\nend program",
    );
    assert_eq!(ints(&out, "b"), vec![3]);
}

#[test]
fn integer_division_truncates_toward_zero() {
    let out = run1(
        "program m\n  integer :: b(4)\n  b(1) = 7 / 2\n  b(2) = -7 / 2\n  b(3) = 7 / -2\n  b(4) = 1 / 2\nend program",
    );
    assert_eq!(ints(&out, "b"), vec![3, -3, -3, 0]);
}

#[test]
fn implicit_typing_of_scalars() {
    // `count1` starts with c → real; `idx` with i → integer.
    let out = run1(
        "program m\n  real :: a(1)\n  integer :: b(1)\n  count1 = 7 / 2\n  idx = 7 / 2\n  a(1) = count1\n  b(1) = idx\nend program",
    );
    // 7/2 is integer division (both ints) = 3; stored into real `count1`
    // as 3.0.
    assert_eq!(reals(&out, "a"), vec![3.0]);
    assert_eq!(ints(&out, "b"), vec![3]);
}

#[test]
fn declared_integer_scalar_truncates_on_store() {
    let out = run1(
        "program m\n  integer :: n\n  integer :: b(1)\n  n = 3.9\n  b(1) = n\nend program",
    );
    assert_eq!(ints(&out, "b"), vec![3]);
}

#[test]
fn custom_lower_bounds_work_end_to_end() {
    let out = run1(
        "program m\n  real :: a(0:3), c(-2:2)\n  do i = 0, 3\n    a(i) = i\n  end do\n  do i = -2, 2\n    c(i) = i * 10\n  end do\nend program",
    );
    assert_eq!(reals(&out, "a"), vec![0.0, 1.0, 2.0, 3.0]);
    assert_eq!(reals(&out, "c"), vec![-20.0, -10.0, 0.0, 10.0, 20.0]);
}

#[test]
fn nested_procedure_calls_share_array_state() {
    let src = "\
subroutine double(n, v)
  integer :: n
  real :: v(n)
  do i = 1, n
    v(i) = v(i) * 2
  end do
end subroutine

subroutine addone_then_double(n, v)
  integer :: n
  real :: v(n)
  do i = 1, n
    v(i) = v(i) + 1
  end do
  call double(n, v)
end subroutine

program m
  real :: a(3)
  do i = 1, 3
    a(i) = i
  end do
  call addone_then_double(3, a)
end program";
    let out = run1(src);
    assert_eq!(reals(&out, "a"), vec![4.0, 6.0, 8.0]);
}

#[test]
fn scalar_params_are_by_value() {
    // Documented simplification (DESIGN.md): scalar writes in callees do
    // not propagate back.
    let src = "\
subroutine bump(x, v)
  integer :: x
  real :: v(1)
  x = x + 100
  v(1) = x
end subroutine

program m
  integer :: n, b(1)
  real :: a(1)
  n = 5
  call bump(n, a)
  b(1) = n
end program";
    let out = run1(src);
    assert_eq!(ints(&out, "b"), vec![5]); // caller's n unchanged
    assert_eq!(reals(&out, "a"), vec![105.0]); // callee saw its copy
}

#[test]
fn division_by_zero_is_reported() {
    let err = run_source(
        "program m\n  integer :: b(1)\n  n = 0\n  b(1) = 1 / n\nend program",
        1,
        &NetworkModel::mpich_gm(),
    )
    .unwrap_err();
    match err {
        RunError::Sim(clustersim::SimError::RankPanic { message, .. }) => {
            assert!(message.contains("division by zero"), "{message}");
        }
        other => panic!("expected rank panic, got {other:?}"),
    }
}

#[test]
fn mod_by_zero_is_reported() {
    let err = run_source(
        "program m\n  integer :: b(1)\n  n = 0\n  b(1) = mod(5, n)\nend program",
        1,
        &NetworkModel::mpich_gm(),
    )
    .unwrap_err();
    assert!(format!("{err}").contains("mod by zero"));
}

#[test]
fn logical_operators_as_integers() {
    let out = run1(
        "program m\n  integer :: b(6)\n  b(1) = 1 .and. 1\n  b(2) = 1 .and. 0\n  b(3) = 0 .or. 1\n  b(4) = .not. 0\n  b(5) = 3 < 5\n  b(6) = 3 /= 3\nend program",
    );
    assert_eq!(ints(&out, "b"), vec![1, 0, 1, 1, 1, 0]);
}

#[test]
fn barrier_only_program_runs_on_many_ranks() {
    let r = run_source(
        "program m\n  integer :: b(1)\n  call mpi_barrier()\n  b(1) = mynum\n  call mpi_barrier()\nend program",
        6,
        &NetworkModel::mpich(),
    )
    .unwrap();
    for (rank, out) in r.outputs.iter().enumerate() {
        assert_eq!(ints(out, "b"), vec![rank as i64]);
    }
}

#[test]
fn ring_exchange_with_wrap() {
    let src = "\
program m
  real :: s(4), r(4)
  do i = 1, 4
    s(i) = mynum * 10 + i
  end do
  inxt = mod(mynum + 1, np)
  iprv = mod(np + mynum - 1, np)
  call mpi_isend(s(1:4), 4, inxt, 0)
  call mpi_irecv(r(1:4), 4, iprv, 0)
  call mpi_waitall()
end program";
    let r = run_source(src, 3, &NetworkModel::mpich_gm()).unwrap();
    // rank 1 receives from rank 0: 1, 2, 3, 4 (+0*10)
    assert_eq!(reals(&r.outputs[1], "r"), vec![1.0, 2.0, 3.0, 4.0]);
    // rank 0 receives from rank 2.
    assert_eq!(reals(&r.outputs[0], "r"), vec![21.0, 22.0, 23.0, 24.0]);
}
