//! `sweepd` — the sweep service daemon.
//!
//! ```text
//! cargo run --release -p overlap-service --bin sweepd -- \
//!     [--addr HOST:PORT] [--queue N] [--threads N]
//! ```
//!
//! Binds (port 0 = ephemeral), prints one `listening on http://ADDR`
//! line (scripts scrape the port from it), and serves until SIGTERM or
//! SIGINT, then drains: the running job finishes, queued jobs are
//! cancelled, new submissions get 503, and the process exits 0.

use service::{Server, ServerConfig};

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        queue_capacity: 8,
        default_threads: 0,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut grab = |what: &str| {
            it.next().map(String::as_str).unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--addr" => config.addr = grab("--addr").to_string(),
            "--queue" => {
                config.queue_capacity = grab("--queue").parse().unwrap_or_else(|e| {
                    eprintln!("bad --queue: {e}");
                    std::process::exit(2);
                })
            }
            "--threads" => {
                config.default_threads = grab("--threads").parse().unwrap_or_else(|e| {
                    eprintln!("bad --threads: {e}");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown flag `{other}` (accepts: --addr HOST:PORT, --queue N, --threads N)");
                std::process::exit(2);
            }
        }
    }

    let server = Server::bind(&config).unwrap_or_else(|e| {
        eprintln!("cannot bind {}: {e}", config.addr);
        std::process::exit(1);
    });
    let addr = server.local_addr().expect("bound listener has an address");
    println!("listening on http://{addr}");
    use std::io::Write;
    let _ = std::io::stdout().flush();

    let handle = server.handle();
    #[cfg(unix)]
    {
        service::signal::install();
        std::thread::spawn(move || loop {
            if service::signal::signaled() {
                eprintln!("signal received; draining");
                handle.shutdown();
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        });
    }
    #[cfg(not(unix))]
    let _ = handle;

    if let Err(e) = server.run() {
        eprintln!("server error: {e}");
        std::process::exit(1);
    }
    println!("drained; exiting");
}
