//! A deliberately small HTTP/1.1 server-side parser over `std::io`.
//!
//! No dependency, no async, no percent-decoding — just enough of RFC
//! 9112 for the sweep service's JSON API, hardened against hostile
//! input with *hard limits on everything* (pinned by
//! `tests/http_hostile.rs`):
//!
//! | limit                | constant            | violation |
//! |----------------------|---------------------|-----------|
//! | method length        | [`MAX_METHOD`]      | 400       |
//! | request-target bytes | [`MAX_TARGET`]      | 414       |
//! | header line bytes    | [`MAX_HEADER_LINE`] | 431       |
//! | header count         | [`MAX_HEADERS`]     | 431       |
//! | body bytes           | [`MAX_BODY`]        | 413       |
//!
//! Bytes outside printable ASCII in the request target (NUL, controls,
//! spaces smuggled via splitting) and malformed chunked framing are
//! rejected with 400 before any routing happens. One request per
//! connection (`Connection: close` on every response) keeps the state
//! machine trivial — this is a lab-bench control plane, not a CDN.

use std::io::{BufRead, Write};

/// Longest accepted request method ("OPTIONS" is 7; 16 leaves slack).
pub const MAX_METHOD: usize = 16;
/// Longest accepted request target (path + query).
pub const MAX_TARGET: usize = 1024;
/// Longest accepted single header line (name + value).
pub const MAX_HEADER_LINE: usize = 8192;
/// Most headers (and, separately, most chunked trailers) accepted.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body, summed across chunks when chunked.
pub const MAX_BODY: usize = 1 << 20;

/// Why a request was refused before routing. Each variant maps onto the
/// 4xx the server answers with ([`HttpError::status`]).
#[derive(Debug, Clone, PartialEq)]
pub enum HttpError {
    /// Malformed request line, header, framing, or byte-level garbage.
    BadRequest(String),
    /// Request target longer than [`MAX_TARGET`].
    UriTooLong,
    /// Header line over [`MAX_HEADER_LINE`] or more than [`MAX_HEADERS`].
    HeaderTooLarge,
    /// Declared or actual body over [`MAX_BODY`].
    PayloadTooLarge,
    /// The peer stalled past the socket read timeout.
    Timeout,
    /// The peer closed before sending a complete request line; there is
    /// nobody to answer, so the connection is just dropped.
    Closed,
}

impl HttpError {
    /// `(status code, reason phrase)` for the error response.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            HttpError::BadRequest(_) => (400, "Bad Request"),
            HttpError::UriTooLong => (414, "URI Too Long"),
            HttpError::HeaderTooLarge => (431, "Request Header Fields Too Large"),
            HttpError::PayloadTooLarge => (413, "Payload Too Large"),
            HttpError::Timeout => (408, "Request Timeout"),
            HttpError::Closed => (400, "Bad Request"),
        }
    }

    /// Human-readable detail for the JSON error body.
    pub fn message(&self) -> String {
        match self {
            HttpError::BadRequest(m) => m.clone(),
            HttpError::UriTooLong => format!("request target exceeds {MAX_TARGET} bytes"),
            HttpError::HeaderTooLarge => format!(
                "headers exceed {MAX_HEADERS} fields or {MAX_HEADER_LINE} bytes per line"
            ),
            HttpError::PayloadTooLarge => format!("request body exceeds {MAX_BODY} bytes"),
            HttpError::Timeout => "timed out reading the request".into(),
            HttpError::Closed => "connection closed mid-request".into(),
        }
    }
}

/// One parsed request. Header names are lowercased; the body is fully
/// read (and de-chunked) before routing sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    pub method: String,
    /// The path component of the target (before any `?`).
    pub path: String,
    /// The raw query string (after `?`), if present.
    pub query: Option<String>,
    /// `(lowercased name, value)` in arrival order.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// `key=value` lookup in the query string (no percent-decoding —
    /// the API's values are ids and numbers).
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.as_deref()?.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == name).then_some(v)
        })
    }
}

/// Read one CRLF- (or bare-LF-) terminated line, capped at `max` bytes
/// (terminator excluded); a longer line yields `overflow`.
fn read_line(r: &mut impl BufRead, max: usize, overflow: HttpError) -> Result<String, HttpError> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                return Err(if buf.is_empty() {
                    HttpError::Closed
                } else {
                    HttpError::BadRequest("unexpected end of request".into())
                });
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                buf.push(byte[0]);
                if buf.len() > max {
                    return Err(overflow);
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(HttpError::Timeout);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(HttpError::Closed),
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| HttpError::BadRequest("line is not valid UTF-8".into()))
}

fn read_exact_body(
    r: &mut impl BufRead,
    body: &mut Vec<u8>,
    n: usize,
) -> Result<(), HttpError> {
    let start = body.len();
    body.resize(start + n, 0);
    let mut filled = start;
    while filled < body.len() {
        match r.read(&mut body[filled..]) {
            Ok(0) => return Err(HttpError::BadRequest("body shorter than declared".into())),
            Ok(k) => filled += k,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(HttpError::Timeout);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Err(HttpError::Closed),
        }
    }
    Ok(())
}

fn is_token(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b))
}

/// Decode a chunked body: bounded hex size lines, CRLF framing enforced
/// after every chunk, total capped at [`MAX_BODY`], trailers read and
/// discarded under the header limits.
fn read_chunked(r: &mut impl BufRead) -> Result<Vec<u8>, HttpError> {
    let mut body = Vec::new();
    loop {
        let line = read_line(
            r,
            256,
            HttpError::BadRequest("chunk size line too long".into()),
        )?;
        let size_str = line.split(';').next().unwrap_or("").trim();
        if size_str.is_empty()
            || size_str.len() > 16
            || !size_str.bytes().all(|b| b.is_ascii_hexdigit())
        {
            return Err(HttpError::BadRequest(format!(
                "malformed chunk size line `{size_str}`"
            )));
        }
        let size = usize::from_str_radix(size_str, 16)
            .map_err(|_| HttpError::BadRequest("malformed chunk size".into()))?;
        if size == 0 {
            break;
        }
        if body.len() + size > MAX_BODY {
            return Err(HttpError::PayloadTooLarge);
        }
        read_exact_body(r, &mut body, size)?;
        let mut crlf = [0u8; 2];
        let mut got = 0;
        while got < 2 {
            match r.read(&mut crlf[got..]) {
                Ok(0) => return Err(HttpError::BadRequest("truncated chunk".into())),
                Ok(k) => got += k,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Err(HttpError::Timeout),
            }
        }
        if &crlf != b"\r\n" {
            return Err(HttpError::BadRequest(
                "malformed chunked framing (chunk data not CRLF-terminated)".into(),
            ));
        }
    }
    // Trailers: tolerated, bounded, discarded.
    let mut trailers = 0usize;
    loop {
        let line = read_line(r, MAX_HEADER_LINE, HttpError::HeaderTooLarge)?;
        if line.is_empty() {
            break;
        }
        trailers += 1;
        if trailers > MAX_HEADERS {
            return Err(HttpError::HeaderTooLarge);
        }
    }
    Ok(body)
}

/// Parse one complete request (head + body) from the reader, enforcing
/// every limit in the module docs.
pub fn parse_request(r: &mut impl BufRead) -> Result<Request, HttpError> {
    // Request line. The cap is generous enough that a legal line always
    // fits; overflowing it can only mean an oversized target.
    let line = read_line(r, MAX_METHOD + MAX_TARGET + 16, HttpError::UriTooLong)?;
    let mut parts = line.splitn(3, ' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(
                "malformed request line (want `METHOD TARGET HTTP/1.1`)".into(),
            ))
        }
    };
    if method.len() > MAX_METHOD || !is_token(method) {
        return Err(HttpError::BadRequest("malformed request method".into()));
    }
    if target.len() > MAX_TARGET {
        return Err(HttpError::UriTooLong);
    }
    if !target.bytes().all(|b| (0x21..=0x7e).contains(&b)) {
        return Err(HttpError::BadRequest(
            "request target contains control or non-ASCII bytes".into(),
        ));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol version `{version}`"
        )));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    // Headers.
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = read_line(r, MAX_HEADER_LINE, HttpError::HeaderTooLarge)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::HeaderTooLarge);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest("malformed header line (no `:`)".into()));
        };
        if !is_token(name) {
            return Err(HttpError::BadRequest(format!(
                "malformed header name `{name}`"
            )));
        }
        let value = value.trim();
        if !value.bytes().all(|b| b == b'\t' || (0x20..0x7f).contains(&b)) {
            return Err(HttpError::BadRequest(format!(
                "control bytes in value of header `{name}`"
            )));
        }
        headers.push((name.to_ascii_lowercase(), value.to_string()));
    }
    let req_headers = Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body: Vec::new(),
    };

    // Body.
    let te = req_headers.header("transfer-encoding");
    let cl = req_headers.header("content-length");
    let body = match (te, cl) {
        (Some(_), Some(_)) => {
            return Err(HttpError::BadRequest(
                "both Transfer-Encoding and Content-Length given".into(),
            ))
        }
        (Some(te), None) => {
            if !te.eq_ignore_ascii_case("chunked") {
                return Err(HttpError::BadRequest(format!(
                    "unsupported transfer-encoding `{te}`"
                )));
            }
            read_chunked(r)?
        }
        (None, Some(cl)) => {
            let n: usize = cl
                .parse()
                .map_err(|_| HttpError::BadRequest(format!("bad content-length `{cl}`")))?;
            if n > MAX_BODY {
                return Err(HttpError::PayloadTooLarge);
            }
            let mut body = Vec::new();
            read_exact_body(r, &mut body, n)?;
            body
        }
        (None, None) => Vec::new(),
    };
    Ok(Request { body, ..req_headers })
}

/// Serialize a complete response. Every response closes the connection
/// and carries an explicit `Content-Length`.
pub fn response(
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(String, String)],
    body: &[u8],
) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (k, v) in extra_headers {
        out.push_str(&format!("{k}: {v}\r\n"));
    }
    out.push_str("\r\n");
    let mut bytes = out.into_bytes();
    bytes.extend_from_slice(body);
    bytes
}

/// The head of a chunked response (the caller then writes chunks with
/// [`write_chunk`] and finishes with [`finish_chunked`]).
pub fn chunked_head(status: u16, reason: &str, content_type: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    )
    .into_bytes()
}

/// Write one chunk (empty payloads are skipped — an empty chunk would
/// terminate the stream).
pub fn write_chunk(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.is_empty() {
        return Ok(());
    }
    write!(w, "{:x}\r\n", payload.len())?;
    w.write_all(payload)?;
    w.write_all(b"\r\n")?;
    w.flush()
}

/// Terminate a chunked response.
pub fn finish_chunked(w: &mut impl Write) -> std::io::Result<()> {
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        parse_request(&mut Cursor::new(bytes.to_vec()))
    }

    #[test]
    fn parses_a_simple_get() {
        let req = parse(b"GET /jobs/1?baseline=2 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/jobs/1");
        assert_eq!(req.query_param("baseline"), Some("2"));
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_content_length_and_chunked_bodies_identically() {
        let plain = parse(b"POST /jobs HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        let chunked = parse(
            b"POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nhel\r\n2\r\nlo\r\n0\r\n\r\n",
        )
        .unwrap();
        assert_eq!(plain.body, b"hello");
        assert_eq!(chunked.body, b"hello");
    }

    #[test]
    fn rejects_nul_and_controls_in_the_target() {
        assert!(matches!(
            parse(b"GET /jobs/\x001 HTTP/1.1\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET /caf\u{e9} HTTP/1.1\r\n\r\n".as_bytes()),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn rejects_oversized_pieces_with_the_specific_limit_error() {
        let long_target = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_TARGET + 1));
        assert_eq!(parse(long_target.as_bytes()), Err(HttpError::UriTooLong));

        let long_header = format!("GET / HTTP/1.1\r\nX-A: {}\r\n\r\n", "b".repeat(MAX_HEADER_LINE));
        assert_eq!(parse(long_header.as_bytes()), Err(HttpError::HeaderTooLarge));

        let many_headers = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            (0..=MAX_HEADERS)
                .map(|i| format!("X-H{i}: v\r\n"))
                .collect::<String>()
        );
        assert_eq!(parse(many_headers.as_bytes()), Err(HttpError::HeaderTooLarge));

        let big_decl = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert_eq!(parse(big_decl.as_bytes()), Err(HttpError::PayloadTooLarge));
    }

    #[test]
    fn rejects_malformed_chunked_framing() {
        // Chunk data not CRLF-terminated.
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nhelXX0\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        // Non-hex chunk size.
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        // Chunks summing past the body cap.
        let huge = format!(
            "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n{:x}\r\n",
            MAX_BODY + 1
        );
        assert_eq!(parse(huge.as_bytes()), Err(HttpError::PayloadTooLarge));
    }

    #[test]
    fn rejects_protocol_garbage() {
        assert!(matches!(parse(b"\r\n\r\n"), Err(HttpError::BadRequest(_))));
        assert!(matches!(
            parse(b"GET / SPDY/99\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"G\x7fT / HTTP/1.1\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert_eq!(parse(b""), Err(HttpError::Closed));
    }

    #[test]
    fn response_bytes_are_well_formed() {
        let bytes = response(202, "Accepted", "application/json", &[], b"{}");
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 202 Accepted\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
