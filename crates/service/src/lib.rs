//! # service — sweeps over HTTP (`sweepd`)
//!
//! A dependency-free HTTP/1.1 front end over [`driver::JobCore`], built
//! on `std::net` and `driver::json`. Start it with
//! `cargo run --release -p overlap-service --bin sweepd`, then:
//!
//! | endpoint                        | meaning                                   |
//! |---------------------------------|-------------------------------------------|
//! | `POST /jobs`                    | submit a sweep (202, or 503 + Retry-After)|
//! | `GET /jobs/:id`                 | job state + live progress counters        |
//! | `GET /jobs/:id/events`          | chunked stream of progress events         |
//! | `GET /jobs/:id/artifact`        | the canonical `BENCH` JSON (when done)    |
//! | `GET /jobs/:id/diff?baseline=N` | virtual-time diff of two done jobs        |
//!
//! The request body of `POST /jobs` is a JSON object with exactly one
//! grid source — `"grid_file"` (a `scenarios/*.toml` path, resolved
//! server-side), `"grid_toml"` (inline scenario-file text), or
//! `"scenario"` (one explicit scenario object) — plus optional
//! `"threads"` and `"baseline_job"` (a completed job id whose rows an
//! incremental run may reuse).
//!
//! **The invariant this crate must never break:** serving sweeps can
//! change *wall-clock* numbers, never a *simulated* byte. The artifact
//! answered by `/jobs/:id/artifact` is the very string the job core
//! computed from the normalized result — the same bytes `harness quick`
//! writes to `BENCH_sweep.json` (enforced with `cmp` in
//! `scripts/verify.sh` and byte-equality in `tests/sweep_service.rs`).
//!
//! Shutdown ([`ServerHandle::shutdown`], or SIGTERM/SIGINT in `sweepd`)
//! drains: queued jobs are cancelled, the running job finishes, new
//! submissions get 503, event streams run to their terminal event, and
//! only then does [`Server::run`] return.

pub mod http;

use driver::job::{GridSource, JobCore, JobId, JobSpec, JobState, JobStatus, SubmitError};
use driver::json::{self, Json};
use driver::spec::{ModelSpec, ScenarioSpec, SizeClass, Variant};
use http::{HttpError, Request};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long a connection may take to deliver its request.
const READ_TIMEOUT: Duration = Duration::from_secs(10);
/// Poll interval of the accept loop (and of event streaming).
const POLL: Duration = Duration::from_millis(5);

#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Max *queued* jobs before `POST /jobs` answers 503.
    pub queue_capacity: usize,
    /// Default worker threads per job (0 = one per core).
    pub default_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            queue_capacity: 8,
            default_threads: 0,
        }
    }
}

/// A handle for asking a running [`Server`] to drain and stop, safe to
/// move into a signal-watcher thread.
#[derive(Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

/// The bound-but-not-yet-serving server. [`Server::run`] consumes it
/// and blocks until a shutdown request has fully drained.
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
    shutdown: Arc<AtomicBool>,
}

struct Service {
    core: JobCore,
    default_threads: usize,
}

impl Server {
    pub fn bind(config: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            service: Arc::new(Service {
                core: JobCore::new(config.queue_capacity),
                default_threads: config.default_threads,
            }),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shutdown: Arc::clone(&self.shutdown),
        }
    }

    /// Accept loop. Runs until [`ServerHandle::shutdown`] is called and
    /// the job core has drained; keeps accepting *during* the drain so
    /// late submitters get an orderly 503 instead of a refused socket.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut draining = false;
        loop {
            if !draining && self.shutdown.load(Ordering::SeqCst) {
                draining = true;
                self.service.core.shutdown();
            }
            if draining && self.service.core.is_finished() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let service = Arc::clone(&self.service);
                    handlers.push(std::thread::spawn(move || {
                        handle_connection(stream, &service);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL);
                }
                Err(_) => std::thread::sleep(POLL),
            }
            // Dropping a finished handle just detaches an already-dead
            // thread; unfinished ones are joined after the loop.
            handlers.retain(|h| !h.is_finished());
        }
        self.service.core.join();
        for h in handlers {
            let _ = h.join();
        }
        Ok(())
    }
}

fn error_body(message: &str) -> Vec<u8> {
    json::write_json(&Json::Obj(vec![(
        "error".into(),
        Json::Str(message.into()),
    )]))
    .into_bytes()
}

fn respond(stream: &mut TcpStream, status: u16, reason: &'static str, body: &Json) {
    let bytes = json::write_json(body).into_bytes();
    let _ = stream.write_all(&http::response(status, reason, "application/json", &[], &bytes));
}

fn handle_connection(stream: TcpStream, service: &Service) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    let Ok(reader_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(reader_half);
    match http::parse_request(&mut reader) {
        Ok(req) => route(service, &req, &mut stream),
        Err(HttpError::Closed) => {}
        Err(e) => {
            let (status, reason) = e.status();
            let _ = stream.write_all(&http::response(
                status,
                reason,
                "application/json",
                &[],
                &error_body(&e.message()),
            ));
        }
    }
    let _ = stream.flush();
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// `/jobs/:id[/verb]` → `(id, verb)`.
fn job_route(path: &str) -> Option<(JobId, Option<&str>)> {
    let rest = path.strip_prefix("/jobs/")?;
    let (id_str, verb) = match rest.split_once('/') {
        Some((id, verb)) => (id, Some(verb)),
        None => (rest, None),
    };
    let id: JobId = id_str.parse().ok()?;
    Some((id, verb))
}

fn route(service: &Service, req: &Request, stream: &mut TcpStream) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/jobs") => post_job(service, req, stream),
        (_, "/jobs") => {
            respond(stream, 405, "Method Not Allowed", &Json::Obj(vec![(
                "error".into(),
                Json::Str("use POST /jobs or GET /jobs/:id".into()),
            )]));
        }
        ("GET", _) => match job_route(&req.path) {
            Some((id, None)) => get_job(service, id, stream),
            Some((id, Some("events"))) => get_events(service, id, stream),
            Some((id, Some("artifact"))) => get_artifact(service, id, stream),
            Some((id, Some("diff"))) => get_diff(service, id, req, stream),
            _ => respond(stream, 404, "Not Found", &Json::Obj(vec![(
                "error".into(),
                Json::Str(format!("no route for GET {}", req.path)),
            )])),
        },
        (method, path) => respond(stream, 404, "Not Found", &Json::Obj(vec![(
            "error".into(),
            Json::Str(format!("no route for {method} {path}")),
        )])),
    }
}

/// Parse the `"scenario"` object of a submission.
fn scenario_from_json(v: &Json) -> Result<ScenarioSpec, String> {
    if !matches!(v, Json::Obj(_)) {
        return Err("`scenario` must be an object".into());
    }
    let workload = v
        .get("workload")
        .and_then(Json::as_str)
        .ok_or("`scenario.workload` must be a string")?
        .to_string();
    let np = v
        .get("np")
        .and_then(Json::as_u64)
        .ok_or("`scenario.np` must be a non-negative integer")? as usize;
    if np < 2 {
        return Err("`scenario.np` must be at least 2".into());
    }
    let size = match v.get("size") {
        None => SizeClass::Small,
        Some(j) => {
            let s = j.as_str().ok_or("`scenario.size` must be a string")?;
            SizeClass::parse(s)
                .ok_or_else(|| format!("bad `scenario.size` `{s}` (small, medium, standard)"))?
        }
    };
    let model_str = v
        .get("model")
        .and_then(Json::as_str)
        .ok_or("`scenario.model` must be a string")?;
    let model = ModelSpec::parse(model_str).map_err(|e| format!("`scenario.model`: {e}"))?;
    let tile_size = match v.get("tile_size") {
        None | Some(Json::Null) => None,
        Some(j) => Some(
            j.as_u64()
                .ok_or("`scenario.tile_size` must be a positive integer or null")?
                as i64,
        ),
    };
    let variant = match v.get("variant") {
        None => Variant::Compare,
        Some(j) => {
            let s = j.as_str().ok_or("`scenario.variant` must be a string")?;
            Variant::parse(s)
                .ok_or_else(|| format!("bad `scenario.variant` `{s}` (compare, original, prepush)"))?
        }
    };
    Ok(ScenarioSpec {
        workload,
        size,
        np,
        model,
        tile_size,
        variant,
    })
}

fn post_job(service: &Service, req: &Request, stream: &mut TcpStream) {
    let doc = match json::parse_json_bytes(&req.body) {
        Ok(doc) => doc,
        Err(e) => {
            let _ = stream.write_all(&http::response(
                400,
                "Bad Request",
                "application/json",
                &[],
                &error_body(&format!("request body is not valid JSON: {e}")),
            ));
            return;
        }
    };
    let mut sources: Vec<GridSource> = Vec::new();
    if let Some(p) = doc.get("grid_file").and_then(Json::as_str) {
        sources.push(GridSource::GridFile(p.to_string()));
    }
    if let Some(t) = doc.get("grid_toml").and_then(Json::as_str) {
        sources.push(GridSource::GridToml(t.to_string()));
    }
    if let Some(s) = doc.get("scenario") {
        match scenario_from_json(s) {
            Ok(spec) => sources.push(GridSource::Scenario(Box::new(spec))),
            Err(e) => {
                let _ = stream.write_all(&http::response(
                    400,
                    "Bad Request",
                    "application/json",
                    &[],
                    &error_body(&e),
                ));
                return;
            }
        }
    }
    if sources.len() != 1 {
        let _ = stream.write_all(&http::response(
            400,
            "Bad Request",
            "application/json",
            &[],
            &error_body(
                "give exactly one of `grid_file`, `grid_toml`, or `scenario`",
            ),
        ));
        return;
    }
    let threads = match doc.get("threads") {
        None => service.default_threads,
        Some(j) => match j.as_u64() {
            Some(t) => t as usize,
            None => {
                let _ = stream.write_all(&http::response(
                    400,
                    "Bad Request",
                    "application/json",
                    &[],
                    &error_body("`threads` must be a non-negative integer"),
                ));
                return;
            }
        },
    };
    let mut spec = JobSpec::new(sources.into_iter().next().expect("checked len")).threads(threads);
    if let Some(j) = doc.get("baseline_job") {
        let Some(bid) = j.as_u64() else {
            let _ = stream.write_all(&http::response(
                400,
                "Bad Request",
                "application/json",
                &[],
                &error_body("`baseline_job` must be a job id"),
            ));
            return;
        };
        match service.core.result(bid) {
            Some(result) => spec = spec.baseline(result),
            None => {
                let _ = stream.write_all(&http::response(
                    409,
                    "Conflict",
                    "application/json",
                    &[],
                    &error_body(&format!(
                        "`baseline_job` {bid} has no completed result"
                    )),
                ));
                return;
            }
        }
    }
    match service.core.submit(spec) {
        Ok(id) => {
            let body = Json::Obj(vec![
                ("id".into(), Json::Int(id as i64)),
                ("state".into(), Json::Str("queued".into())),
            ]);
            respond(stream, 202, "Accepted", &body);
        }
        Err(SubmitError::QueueFull {
            capacity,
            retry_after_s,
        }) => {
            let body = Json::Obj(vec![
                (
                    "error".into(),
                    Json::Str(format!("job queue full ({capacity} queued)")),
                ),
                ("retry_after_s".into(), Json::Int(retry_after_s as i64)),
            ]);
            let bytes = json::write_json(&body).into_bytes();
            let _ = stream.write_all(&http::response(
                503,
                "Service Unavailable",
                "application/json",
                &[("Retry-After".to_string(), retry_after_s.to_string())],
                &bytes,
            ));
        }
        Err(SubmitError::ShuttingDown) => {
            let _ = stream.write_all(&http::response(
                503,
                "Service Unavailable",
                "application/json",
                &[],
                &error_body("shutting down; not accepting jobs"),
            ));
        }
        Err(SubmitError::Invalid(msg)) => {
            let _ = stream.write_all(&http::response(
                400,
                "Bad Request",
                "application/json",
                &[],
                &error_body(&msg),
            ));
        }
    }
}

fn status_json(s: &JobStatus) -> Json {
    let mut fields = vec![
        ("id".into(), Json::Int(s.id as i64)),
        ("state".into(), Json::Str(s.state.id().into())),
    ];
    if let JobState::Failed(msg) = &s.state {
        fields.push(("error".into(), Json::Str(msg.clone())));
    }
    fields.extend([
        ("scenarios".into(), Json::Int(s.scenarios as i64)),
        ("finished".into(), Json::Int(s.finished as i64)),
        ("ok".into(), Json::Int(s.ok as i64)),
        ("errors".into(), Json::Int(s.errors as i64)),
        ("reused".into(), Json::Int(s.reused as i64)),
        ("events".into(), Json::Int(s.events as i64)),
        ("wall_ms".into(), Json::Float(s.wall_ms)),
        ("cache_hits".into(), Json::Int(s.cache_hits as i64)),
        ("cache_misses".into(), Json::Int(s.cache_misses as i64)),
    ]);
    Json::Obj(fields)
}

fn get_job(service: &Service, id: JobId, stream: &mut TcpStream) {
    match service.core.status(id) {
        Some(status) => respond(stream, 200, "OK", &status_json(&status)),
        None => respond(stream, 404, "Not Found", &Json::Obj(vec![(
            "error".into(),
            Json::Str(format!("no such job {id}")),
        )])),
    }
}

/// Stream the job's event log as newline-delimited compact JSON in a
/// chunked response, following the live log until the job is terminal.
fn get_events(service: &Service, id: JobId, stream: &mut TcpStream) {
    if service.core.status(id).is_none() {
        respond(stream, 404, "Not Found", &Json::Obj(vec![(
            "error".into(),
            Json::Str(format!("no such job {id}")),
        )]));
        return;
    }
    if stream.write_all(&http::chunked_head(200, "OK", "application/x-ndjson")).is_err() {
        return;
    }
    let mut from = 0usize;
    while let Some((events, terminal)) =
        service.core.events_since(id, from, Duration::from_millis(250))
    {
        let mut payload = String::new();
        for ev in &events {
            payload.push_str(&json::write_json_compact(&ev.to_json()));
            payload.push('\n');
        }
        from += events.len();
        if http::write_chunk(stream, payload.as_bytes()).is_err() {
            return; // client went away; nothing to clean up
        }
        if terminal && events.is_empty() {
            let state = service
                .core
                .status(id)
                .map(|s| s.state.id().to_string())
                .unwrap_or_else(|| "unknown".into());
            let end = json::write_json_compact(&Json::Obj(vec![
                ("event".into(), Json::Str("end".into())),
                ("state".into(), Json::Str(state)),
            ])) + "\n";
            if http::write_chunk(stream, end.as_bytes()).is_err() {
                return;
            }
            let _ = http::finish_chunked(stream);
            return;
        }
    }
}

fn get_artifact(service: &Service, id: JobId, stream: &mut TcpStream) {
    let Some(status) = service.core.status(id) else {
        respond(stream, 404, "Not Found", &Json::Obj(vec![(
            "error".into(),
            Json::Str(format!("no such job {id}")),
        )]));
        return;
    };
    match service.core.artifact(id) {
        Some(artifact) => {
            // The exact bytes the job core computed — byte-identical to
            // the file `harness` would have written for the same grid.
            let _ = stream.write_all(&http::response(
                200,
                "OK",
                "application/json",
                &[],
                artifact.as_bytes(),
            ));
        }
        None => {
            let body = Json::Obj(vec![
                (
                    "error".into(),
                    Json::Str(format!("job {id} has no artifact (state: {})", status.state.id())),
                ),
                ("state".into(), Json::Str(status.state.id().into())),
            ]);
            respond(stream, 409, "Conflict", &body);
        }
    }
}

fn get_diff(service: &Service, id: JobId, req: &Request, stream: &mut TcpStream) {
    let Some(baseline_id) = req.query_param("baseline").and_then(|v| v.parse::<JobId>().ok())
    else {
        respond(stream, 400, "Bad Request", &Json::Obj(vec![(
            "error".into(),
            Json::Str("diff needs `?baseline=<job id>`".into()),
        )]));
        return;
    };
    let tolerance = match req.query_param("tol") {
        None => 0.0,
        Some(v) => match v.parse::<f64>() {
            Ok(t) if t.is_finite() && t >= 0.0 => t,
            _ => {
                respond(stream, 400, "Bad Request", &Json::Obj(vec![(
                    "error".into(),
                    Json::Str(format!("bad `tol` `{v}`")),
                )]));
                return;
            }
        },
    };
    let fetch = |jid: JobId| -> Result<Arc<driver::SweepResult>, (u16, &'static str, String)> {
        match service.core.status(jid) {
            None => Err((404, "Not Found", format!("no such job {jid}"))),
            Some(s) => service.core.result(jid).ok_or((
                409,
                "Conflict",
                format!("job {jid} is not done (state: {})", s.state.id()),
            )),
        }
    };
    let (baseline, candidate) = match (fetch(baseline_id), fetch(id)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err((status, reason, msg)), _) | (_, Err((status, reason, msg))) => {
            let _ = stream.write_all(&http::response(
                status,
                reason,
                "application/json",
                &[],
                &error_body(&msg),
            ));
            return;
        }
    };
    let report = driver::diff(&baseline, &candidate, tolerance);
    let body = Json::Obj(vec![
        ("baseline".into(), Json::Int(baseline_id as i64)),
        ("candidate".into(), Json::Int(id as i64)),
        ("tolerance".into(), Json::Float(tolerance)),
        ("has_regressions".into(), Json::Bool(report.has_regressions())),
        ("report".into(), Json::Str(report.render())),
    ]);
    respond(stream, 200, "OK", &body);
}

/// SIGTERM/SIGINT latching for `sweepd`, with no libc crate: `std`
/// already links the platform libc, so declaring `signal(2)` is enough.
/// The handler only stores an `AtomicBool` (async-signal-safe); a
/// watcher thread turns the latch into a graceful [`ServerHandle`]
/// shutdown.
#[cfg(unix)]
pub mod signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SIGNALED: AtomicBool = AtomicBool::new(false);

    extern "C" fn latch(_signum: i32) {
        SIGNALED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Install the latch for SIGINT (2) and SIGTERM (15).
    pub fn install() {
        let handler = latch as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(2, handler);
            signal(15, handler);
        }
    }

    /// Has a latched signal arrived?
    pub fn signaled() -> bool {
        SIGNALED.load(Ordering::SeqCst)
    }
}
