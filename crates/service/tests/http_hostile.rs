//! Hostile-input tests: raw TCP against a live server, no HTTP client
//! library to sand the edges off. Every malformed or oversized request
//! must come back as a clean 4xx (or a dropped connection) without
//! touching the job core — the server must stay up and serve a
//! well-formed request afterwards.

use service::{Server, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn start_server() -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        queue_capacity: 2,
        default_threads: 1,
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        server.run().expect("server run");
    });
    (addr, handle, join)
}

/// Send raw bytes, read the whole response (connection closes after).
fn talk(addr: SocketAddr, bytes: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(bytes).expect("write request");
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out);
    String::from_utf8_lossy(&out).into_owned()
}

fn status_line(response: &str) -> &str {
    response.lines().next().unwrap_or("")
}

#[test]
fn hostile_inputs_get_specific_4xx_and_the_server_survives() {
    let (addr, handle, join) = start_server();

    // NUL byte in the path.
    let resp = talk(addr, b"GET /jobs/\x001 HTTP/1.1\r\n\r\n");
    assert!(status_line(&resp).starts_with("HTTP/1.1 400"), "{resp}");

    // Garbage request line.
    let resp = talk(addr, b"!!!not http at all!!!\r\n\r\n");
    assert!(status_line(&resp).starts_with("HTTP/1.1 400"), "{resp}");

    // Overlong URL -> 414.
    let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(5000));
    let resp = talk(addr, long.as_bytes());
    assert!(status_line(&resp).starts_with("HTTP/1.1 414"), "{resp}");

    // Giant header line -> 431.
    let bomb = format!("GET /jobs/1 HTTP/1.1\r\nX-Bomb: {}\r\n\r\n", "b".repeat(9000));
    let resp = talk(addr, bomb.as_bytes());
    assert!(status_line(&resp).starts_with("HTTP/1.1 431"), "{resp}");

    // Too many headers -> 431.
    let many = format!(
        "GET /jobs/1 HTTP/1.1\r\n{}\r\n",
        (0..100).map(|i| format!("X-H{i}: v\r\n")).collect::<String>()
    );
    let resp = talk(addr, many.as_bytes());
    assert!(status_line(&resp).starts_with("HTTP/1.1 431"), "{resp}");

    // Oversized declared body -> 413 (before the server reads a byte
    // of it).
    let resp = talk(
        addr,
        b"POST /jobs HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n",
    );
    assert!(status_line(&resp).starts_with("HTTP/1.1 413"), "{resp}");

    // Malformed chunked framing: chunk data not CRLF-terminated.
    let resp = talk(
        addr,
        b"POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhelloXX0\r\n\r\n",
    );
    assert!(status_line(&resp).starts_with("HTTP/1.1 400"), "{resp}");

    // Chunks that sum past the body cap -> 413.
    let resp = talk(
        addr,
        b"POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nfffffff\r\n",
    );
    assert!(status_line(&resp).starts_with("HTTP/1.1 413"), "{resp}");

    // Unknown routes and bad methods are clean errors, not panics.
    let resp = talk(addr, b"GET /nope HTTP/1.1\r\n\r\n");
    assert!(status_line(&resp).starts_with("HTTP/1.1 404"), "{resp}");
    let resp = talk(addr, b"DELETE /jobs HTTP/1.1\r\n\r\n");
    assert!(status_line(&resp).starts_with("HTTP/1.1 405"), "{resp}");

    // A POST with a JSON body that is not a valid submission -> 400,
    // and the queue stays empty for the next test below.
    let body = b"{\"nothing\": true}";
    let req = format!(
        "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    let mut full = req.into_bytes();
    full.extend_from_slice(body);
    let resp = talk(addr, &full);
    assert!(status_line(&resp).starts_with("HTTP/1.1 400"), "{resp}");

    // After all that abuse, a well-formed request still works.
    let resp = talk(addr, b"GET /jobs/1 HTTP/1.1\r\n\r\n");
    assert!(
        status_line(&resp).starts_with("HTTP/1.1 404"),
        "expected 404 for unknown job on a healthy server: {resp}"
    );

    handle.shutdown();
    join.join().expect("server thread exits cleanly");
}
