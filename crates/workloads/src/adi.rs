//! Finite differences by alternating-direction sweeps (the paper's §2
//! "Finite differences" exemplar). Each step relaxes the local slab
//! against the coefficient vector, transposes via `MPI_ALLTOALL`, and
//! folds the transposed data back into the coefficients — so every step's
//! communication feeds the next step's computation, making the equivalence
//! check sensitive to any misplaced element.
//!
//! This kernel also exercises the *relaxed* direct pattern: the RHS reads
//! arrays (`c`, `u` itself), which DESIGN.md documents as a sound
//! generalization of the paper's "RHS is not array ref" rule.

use crate::Workload;

#[derive(Debug, Clone)]
pub struct AdiStencil {
    pub np: usize,
    pub nloc: usize,
    pub steps: usize,
    pub work: usize,
}

impl AdiStencil {
    pub fn small(np: usize) -> Self {
        AdiStencil {
            np,
            nloc: 20,
            steps: 3,
            work: 4,
        }
    }

    /// Smallest scale where pre-push reliably wins on MPICH-GM (see
    /// `SizeClass::Medium`).
    pub fn medium(np: usize) -> Self {
        AdiStencil {
            np,
            nloc: 1024,
            steps: 2,
            work: 2,
        }
    }

    pub fn standard(np: usize) -> Self {
        AdiStencil {
            np,
            nloc: 4096,
            steps: 4,
            work: 2,
        }
    }
}

impl Workload for AdiStencil {
    fn name(&self) -> &'static str {
        "adi-stencil (finite differences)"
    }

    fn source(&self) -> String {
        let AdiStencil {
            np,
            nloc,
            steps,
            work,
        } = *self;
        format!(
            "\
program main
  real :: u({nloc}, {np}), ut({nloc}, {np}), c({nloc})
  do i = 1, {nloc}
    c(i) = i * 0.01 + mynum
  end do
  do it = 1, {steps}
    do ix = 1, {nloc}
      do iz = 1, {np}
        t = c(ix) * 0.5 + u(ix, iz) * 0.25 + iz
        do iw = 1, {work}
          t = t + c(ix) * 0.001 * iw
        end do
        u(ix, iz) = t
      end do
    end do
    call mpi_alltoall(u, {nloc}, ut)
    do ix = 1, {nloc}
      t2 = 0.0
      do iz = 1, {np}
        t2 = t2 + ut(ix, iz)
      end do
      c(ix) = c(ix) * 0.5 + t2 * 0.0625
    end do
  end do
end program
"
        )
    }

    fn context_pairs(&self) -> Vec<(String, i64)> {
        vec![("np".into(), self.np as i64)]
    }

    fn output_arrays(&self) -> Vec<String> {
        vec!["u".into(), "ut".into(), "c".into()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_and_validates() {
        let w = AdiStencil::small(4);
        let src = w.source();
        assert!(src.contains("call mpi_alltoall(u, 20, ut)"));
        assert!(src.contains("u(ix, iz) = t"));
        let _ = w.program();
    }

    #[test]
    fn rhs_reads_arrays_relaxed_direct() {
        let src = AdiStencil::small(4).source();
        assert!(src.contains("c(ix) * 0.5 + u(ix, iz)"));
    }
}
