//! The paper's Figure 2(a) abstract kernel, verbatim shape: a 1-D send
//! array filled by an inner computation loop, exchanged with
//! `MPI_ALLTOALL` at the end of every outer iteration. The node "loop" is
//! the computation loop itself, so the transformation uses the tiled
//! *owner sends* strategy (§3.5's subset case).

use crate::Workload;

/// Size parameters. The send array has `np * sz` elements; `outer`
/// iterations each exchange `sz` elements per partner; `work` controls the
/// per-element computation (the knob that decides how much communication
/// the CPU can hide).
#[derive(Debug, Clone)]
pub struct Direct1d {
    pub np: usize,
    pub sz: usize,
    pub outer: usize,
    pub work: usize,
}

impl Direct1d {
    pub fn small(np: usize) -> Self {
        Direct1d {
            np,
            sz: 16,
            outer: 3,
            work: 8,
        }
    }

    /// Smallest scale with Figure-1-meaningful message sizes (see
    /// `SizeClass::Medium`).
    pub fn medium(np: usize) -> Self {
        Direct1d {
            np,
            sz: 1024,
            outer: 2,
            work: 4,
        }
    }

    /// Figure-1-scale: enough bytes and compute for overlap to matter.
    pub fn standard(np: usize) -> Self {
        Direct1d {
            np,
            sz: 2048,
            outer: 4,
            work: 3,
        }
    }

    pub fn n(&self) -> usize {
        self.np * self.sz
    }
}

impl Workload for Direct1d {
    fn name(&self) -> &'static str {
        "direct-1d (Fig. 2a)"
    }

    fn source(&self) -> String {
        let n = self.n();
        let Direct1d { sz, outer, work, .. } = *self;
        format!(
            "\
program main
  real :: as({n}), ar({n}), acc({n})
  do iy = 1, {outer}
    do ix = 1, {n}
      t = 0.0
      do iw = 1, {work}
        t = t + ix * iw + iy
      end do
      as(ix) = t * 0.5 + ix
    end do
    call mpi_alltoall(as, {sz}, ar)
    do ix = 1, {n}
      acc(ix) = acc(ix) * 0.5 + ar(ix) * 0.25
    end do
  end do
end program
"
        )
    }

    fn context_pairs(&self) -> Vec<(String, i64)> {
        vec![("np".into(), self.np as i64)]
    }

    fn output_arrays(&self) -> Vec<String> {
        vec!["ar".into(), "acc".into(), "as".into()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_fig2a_shape() {
        let w = Direct1d::small(4);
        let src = w.source();
        assert!(src.contains("call mpi_alltoall(as, 16, ar)"));
        assert!(src.contains("do ix = 1, 64"));
        let _ = w.program();
    }

    #[test]
    fn array_sized_np_times_sz() {
        let w = Direct1d { np: 8, sz: 32, outer: 1, work: 1 };
        assert_eq!(w.n(), 256);
        assert!(w.source().contains("as(256)"));
    }
}
