//! The canonical all-peers kernel: a rank-2 send array `as(nloc, np)` whose
//! node dimension is swept by an *inner* loop, so every tile finalizes a
//! slice of every partner's partition — the exact precondition for the
//! paper's Figure-4 skewed exchange.

use crate::Workload;

#[derive(Debug, Clone)]
pub struct Direct2d {
    pub np: usize,
    /// Elements per partner (= extent of dimension 1 = alltoall count).
    pub nloc: usize,
    pub outer: usize,
    pub work: usize,
}

impl Direct2d {
    pub fn small(np: usize) -> Self {
        Direct2d {
            np,
            nloc: 24,
            outer: 2,
            work: 6,
        }
    }

    /// Smallest scale where pre-push reliably wins on MPICH-GM (see
    /// `SizeClass::Medium`).
    pub fn medium(np: usize) -> Self {
        Direct2d {
            np,
            nloc: 1024,
            outer: 2,
            work: 3,
        }
    }

    pub fn standard(np: usize) -> Self {
        // Strong scaling past np = 128: hold the *global* problem size
        // fixed (nloc · np² message volume ∝ constant) so the giant-np
        // rows cost roughly what the np = 128 row does instead of
        // growing quadratically with the partner count. Rows at
        // np ≤ 128 keep the historical nloc = 4096 byte-for-byte.
        let nloc = if np <= 128 {
            4096
        } else {
            (4096 * 128 * 128 / (np * np)).max(64)
        };
        Direct2d {
            np,
            nloc,
            outer: 4,
            work: 3,
        }
    }
}

impl Workload for Direct2d {
    fn name(&self) -> &'static str {
        "direct-2d (Fig. 4 all-peers)"
    }

    fn source(&self) -> String {
        let Direct2d {
            np,
            nloc,
            outer,
            work,
        } = *self;
        format!(
            "\
program main
  real :: as({nloc}, {np}), ar({nloc}, {np}), acc({nloc})
  do iy = 1, {outer}
    do ix = 1, {nloc}
      do iz = 1, {np}
        t = 0.0
        do iw = 1, {work}
          t = t + ix * iw + iz + iy
        end do
        as(ix, iz) = t * 0.5 + ix
      end do
    end do
    call mpi_alltoall(as, {nloc}, ar)
    do ix = 1, {nloc}
      t2 = 0.0
      do iz = 1, {np}
        t2 = t2 + ar(ix, iz)
      end do
      acc(ix) = acc(ix) * 0.5 + t2 * 0.125
    end do
  end do
end program
"
        )
    }

    fn context_pairs(&self) -> Vec<(String, i64)> {
        vec![("np".into(), self.np as i64)]
    }

    fn output_arrays(&self) -> Vec<String> {
        vec!["ar".into(), "acc".into(), "as".into()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_and_validates() {
        let w = Direct2d::small(4);
        let src = w.source();
        assert!(src.contains("as(24, 4)"));
        assert!(src.contains("call mpi_alltoall(as, 24, ar)"));
        let _ = w.program();
    }
}
