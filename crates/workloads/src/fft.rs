//! Multi-dimensional FFT transpose (one of the paper's §2 motivating
//! algorithms). Each rank computes its local rows with twiddle-factor
//! trigonometry (`stages` butterfly passes per element), then transposes
//! via `MPI_ALLTOALL` — the classic 2-D distributed FFT structure where
//! the transpose is the scalability bottleneck pre-pushing attacks.

use crate::Workload;

#[derive(Debug, Clone)]
pub struct FftTranspose {
    pub np: usize,
    /// Elements per partner per transpose.
    pub nloc: usize,
    /// Butterfly stages (compute intensity per element).
    pub stages: usize,
    /// Forward + inverse style repetitions.
    pub passes: usize,
}

impl FftTranspose {
    pub fn small(np: usize) -> Self {
        FftTranspose {
            np,
            nloc: 16,
            stages: 4,
            passes: 2,
        }
    }

    /// Smallest scale where pre-push reliably wins on MPICH-GM (see
    /// `SizeClass::Medium`).
    pub fn medium(np: usize) -> Self {
        FftTranspose {
            np,
            nloc: 1024,
            stages: 2,
            passes: 2,
        }
    }

    pub fn standard(np: usize) -> Self {
        FftTranspose {
            np,
            nloc: 4096,
            stages: 2,
            passes: 3,
        }
    }
}

impl Workload for FftTranspose {
    fn name(&self) -> &'static str {
        "fft-transpose"
    }

    fn source(&self) -> String {
        let FftTranspose {
            np,
            nloc,
            stages,
            passes,
        } = *self;
        format!(
            "\
program main
  real :: as({nloc}, {np}), ar({nloc}, {np}), spec({nloc})
  do i = 1, {nloc}
    spec(i) = i * 0.001
  end do
  do ip = 1, {passes}
    do ix = 1, {nloc}
      do iz = 1, {np}
        t = spec(ix) + ip
        do iw = 1, {stages}
          t = t + cos(0.001 * (ix * iw + iz)) * 0.5 + sin(0.002 * iw) * 0.25
        end do
        as(ix, iz) = t
      end do
    end do
    call mpi_alltoall(as, {nloc}, ar)
    do ix = 1, {nloc}
      t2 = 0.0
      do iz = 1, {np}
        t2 = t2 + ar(ix, iz)
      end do
      spec(ix) = spec(ix) * 0.5 + t2 / {np}
    end do
  end do
end program
"
        )
    }

    fn context_pairs(&self) -> Vec<(String, i64)> {
        vec![("np".into(), self.np as i64)]
    }

    fn output_arrays(&self) -> Vec<String> {
        vec!["ar".into(), "spec".into(), "as".into()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_twiddle_compute() {
        let w = FftTranspose::small(4);
        let src = w.source();
        assert!(src.contains("cos(0.001"));
        assert!(src.contains("call mpi_alltoall(as, 16, ar)"));
        let _ = w.program();
    }
}
