//! The indirect compute-copy pattern (paper §3.2, Fig. 3(a)) in its
//! *provable* form: a producer subroutine fills a temporary `at`, a copy
//! loop aggregates it into column `iy` of a rank-2 `as`, and the alltoall
//! ships one column per partner. The copy loop's map is the identity on
//! column-major order, so the transformation proves order preservation and
//! removes the copy without user queries.

use crate::Workload;

#[derive(Debug, Clone)]
pub struct Indirect2d {
    pub np: usize,
    /// Elements per partner (= |at| = alltoall count).
    pub m: usize,
    pub work: usize,
}

impl Indirect2d {
    pub fn small(np: usize) -> Self {
        Indirect2d { np, m: 20, work: 6 }
    }

    /// Smallest scale where pre-push reliably wins on MPICH-GM (see
    /// `SizeClass::Medium`).
    pub fn medium(np: usize) -> Self {
        Indirect2d {
            np,
            m: 1024,
            work: 3,
        }
    }

    pub fn standard(np: usize) -> Self {
        Indirect2d {
            np,
            m: 4096,
            work: 3,
        }
    }
}

impl Workload for Indirect2d {
    fn name(&self) -> &'static str {
        "indirect-2d (Fig. 3a, provable)"
    }

    fn source(&self) -> String {
        let Indirect2d { np, m, work } = *self;
        format!(
            "\
subroutine producer(iy, m, at)
  integer :: iy, m
  real :: at(m)
  do i = 1, m
    t = 0.0
    do iw = 1, {work}
      t = t + i * iw + iy
    end do
    at(i) = t * 0.5 + i
  end do
end subroutine

program main
  real :: as({m}, {np}), ar({m}, {np}), acc({m})
  real :: at({m})
  do iy = 1, {np}
    call producer(iy, {m}, at)
    do i = 1, {m}
      as(i, iy) = at(i)
    end do
  end do
  call mpi_alltoall(as, {m}, ar)
  do i = 1, {m}
    t2 = 0.0
    do iz = 1, {np}
      t2 = t2 + ar(i, iz)
    end do
    acc(i) = t2 * 0.125
  end do
end program
"
        )
    }

    fn context_pairs(&self) -> Vec<(String, i64)> {
        vec![("np".into(), self.np as i64)]
    }

    fn output_arrays(&self) -> Vec<String> {
        // `as` becomes dead in the transformed program (the copy loop is
        // removed); equivalence checks exclude it via the report.
        vec!["ar".into(), "acc".into()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_fig3_shape() {
        let w = Indirect2d::small(4);
        let src = w.source();
        assert!(src.contains("call producer(iy, 20, at)"));
        assert!(src.contains("as(i, iy) = at(i)"));
        assert!(src.contains("call mpi_alltoall(as, 20, ar)"));
        let _ = w.program();
    }
}
