//! The paper's Figure 3(a) nearly verbatim: a rank-3 send array
//! `as(d, d, np)` filled from the temporary through a `mod`/`div`
//! re-indexing (`tx = mod(ix-1, d) + 1`, `ty = (ix-1)/d + 1`). The map *is*
//! flat-order-preserving, but the subscripts are non-affine, so static
//! analysis cannot prove it — this workload exercises the semi-automatic
//! path (`UserOracle::AssumeSafe`, §3.1/§3.4).

use crate::Workload;

#[derive(Debug, Clone)]
pub struct Indirect3d {
    pub np: usize,
    /// Edge of the square slab; the temporary holds `d*d` elements.
    pub d: usize,
    pub work: usize,
}

impl Indirect3d {
    pub fn small(np: usize) -> Self {
        Indirect3d { np, d: 5, work: 4 }
    }

    /// Smallest scale where pre-push reliably wins on MPICH-GM (see
    /// `SizeClass::Medium`).
    pub fn medium(np: usize) -> Self {
        Indirect3d { np, d: 24, work: 3 }
    }

    pub fn standard(np: usize) -> Self {
        Indirect3d { np, d: 64, work: 3 }
    }

    pub fn m(&self) -> usize {
        self.d * self.d
    }
}

impl Workload for Indirect3d {
    fn name(&self) -> &'static str {
        "indirect-3d (Fig. 3a verbatim, oracle-assisted)"
    }

    fn source(&self) -> String {
        let Indirect3d { np, d, work } = *self;
        let m = self.m();
        format!(
            "\
subroutine producer(iy, m, at)
  integer :: iy, m
  real :: at(m)
  do i = 1, m
    t = 0.0
    do iw = 1, {work}
      t = t + i * iw + iy
    end do
    at(i) = t * 0.25 + i
  end do
end subroutine

program main
  real :: as({d}, {d}, {np}), ar({d}, {d}, {np}), acc({d})
  real :: at({m})
  do iy = 1, {np}
    call producer(iy, {m}, at)
    do ix = 1, {m}
      itx = mod(ix - 1, {d}) + 1
      ity = (ix - 1) / {d} + 1
      as(itx, ity, iy) = at(ix)
    end do
  end do
  call mpi_alltoall(as, {m}, ar)
  do i = 1, {d}
    t2 = 0.0
    do iz = 1, {np}
      t2 = t2 + ar(i, i, iz)
    end do
    acc(i) = t2 * 0.125
  end do
end program
"
        )
    }

    fn context_pairs(&self) -> Vec<(String, i64)> {
        vec![("np".into(), self.np as i64)]
    }

    fn output_arrays(&self) -> Vec<String> {
        vec!["ar".into(), "acc".into()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_mod_div_copy_loop() {
        let w = Indirect3d::small(4);
        let src = w.source();
        assert!(src.contains("itx = mod(ix - 1, 5) + 1"));
        assert!(src.contains("as(itx, ity, iy) = at(ix)"));
        let _ = w.program();
    }

    #[test]
    fn temp_size_is_d_squared() {
        assert_eq!(Indirect3d::small(4).m(), 25);
    }
}
