//! The §3.5 node-loop-outermost pair: the node dimension is swept by the
//! *outer* loop, so the efficient Figure-4 exchange is only reachable if
//! the loop nest can be legally interchanged. [`InterchangeLegal`] permits
//! the interchange; [`InterchangeBlocked`] carries a loop-carried stencil
//! dependence through a helper array `c`, forcing the congested
//! per-column fallback — slower, but still correct.

use crate::Workload;

/// Size parameters shared by both variants. The send array is
/// `as(sz, np)`; each of the `outer` iterations exchanges one `sz`-element
/// column per partner.
#[derive(Debug, Clone)]
pub struct Interchange {
    pub np: usize,
    pub sz: usize,
    pub outer: usize,
    /// When set, a `c(sz+4, 2*np)` stencil recurrence rides inside the
    /// compute nest and blocks the interchange.
    pub blocked: bool,
}

impl Interchange {
    fn small(np: usize, blocked: bool) -> Self {
        Interchange {
            np,
            sz: 64,
            outer: 2,
            blocked,
        }
    }

    fn medium(np: usize, blocked: bool) -> Self {
        Interchange {
            np,
            sz: 1024,
            outer: 2,
            blocked,
        }
    }

    fn standard(np: usize, blocked: bool) -> Self {
        Interchange {
            np,
            sz: 4096,
            outer: 4,
            blocked,
        }
    }
}

impl Workload for Interchange {
    fn name(&self) -> &'static str {
        if self.blocked {
            "interchange-blocked (§3.5 fallback)"
        } else {
            "interchange-legal (§3.5 node loop outermost)"
        }
    }

    fn source(&self) -> String {
        let Interchange {
            np, sz, blocked, ..
        } = *self;
        let outer = self.outer;
        let (decl, stencil) = if blocked {
            (
                format!(", c({}, {})", sz + 4, 2 * np),
                "        c(ix, iz + 1) = c(ix + 1, iz) + 1\n",
            )
        } else {
            (String::new(), "")
        };
        format!(
            "\
program main
  real :: as({sz}, {np}), ar({sz}, {np}){decl}
  do it = 1, {outer}
    do iz = 1, {np}
      do ix = 1, {sz}
{stencil}        as(ix, iz) = ix * iz + it
      end do
    end do
    call mpi_alltoall(as, {sz}, ar)
  end do
end program
"
        )
    }

    fn context_pairs(&self) -> Vec<(String, i64)> {
        vec![("np".into(), self.np as i64)]
    }

    fn output_arrays(&self) -> Vec<String> {
        let mut out = vec!["ar".into(), "as".into()];
        if self.blocked {
            out.push("c".into());
        }
        out
    }
}

/// Node loop outermost, interchange provably legal (Fig. 4 recovered).
#[derive(Debug, Clone)]
pub struct InterchangeLegal(pub Interchange);

impl InterchangeLegal {
    pub fn small(np: usize) -> Self {
        InterchangeLegal(Interchange::small(np, false))
    }

    pub fn medium(np: usize) -> Self {
        InterchangeLegal(Interchange::medium(np, false))
    }

    pub fn standard(np: usize) -> Self {
        InterchangeLegal(Interchange::standard(np, false))
    }
}

impl Workload for InterchangeLegal {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn source(&self) -> String {
        self.0.source()
    }
    fn context_pairs(&self) -> Vec<(String, i64)> {
        self.0.context_pairs()
    }
    fn output_arrays(&self) -> Vec<String> {
        self.0.output_arrays()
    }
}

/// Node loop outermost with a stencil recurrence blocking the interchange.
#[derive(Debug, Clone)]
pub struct InterchangeBlocked(pub Interchange);

impl InterchangeBlocked {
    pub fn small(np: usize) -> Self {
        InterchangeBlocked(Interchange::small(np, true))
    }

    pub fn medium(np: usize) -> Self {
        InterchangeBlocked(Interchange::medium(np, true))
    }

    pub fn standard(np: usize) -> Self {
        InterchangeBlocked(Interchange::standard(np, true))
    }
}

impl Workload for InterchangeBlocked {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn source(&self) -> String {
        self.0.source()
    }
    fn context_pairs(&self) -> Vec<(String, i64)> {
        self.0.context_pairs()
    }
    fn output_arrays(&self) -> Vec<String> {
        self.0.output_arrays()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legal_variant_has_no_stencil() {
        let w = InterchangeLegal::small(4);
        let src = w.source();
        assert!(src.contains("call mpi_alltoall(as, 64, ar)"));
        assert!(!src.contains("c(ix"));
        let _ = w.program();
    }

    #[test]
    fn blocked_variant_carries_the_recurrence() {
        let w = InterchangeBlocked::small(4);
        let src = w.source();
        assert!(src.contains("c(68, 8)"));
        assert!(src.contains("c(ix, iz + 1) = c(ix + 1, iz) + 1"));
        assert!(w.output_arrays().contains(&"c".to_string()));
        let _ = w.program();
    }
}
