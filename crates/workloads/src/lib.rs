//! # workloads — parameterized mini-Fortran programs for the evaluation
//!
//! The paper's §2 names the application class: "Sorting, LU Factorization,
//! Finite differences, and multi-dimensional FFT constitute examples of
//! algorithms that could fit this abstract form". Each module generates a
//! program in that class, sized by a `Params`-style struct, plus the
//! matching symbol values for the transformation's analysis context via
//! [`Workload::context_pairs`].
//!
//! | module        | paper artefact                     | pattern    | strategy exercised |
//! |---------------|------------------------------------|------------|--------------------|
//! | [`direct`]    | Fig. 2(a) abstract kernel          | direct 1-D | tiled owner sends  |
//! | [`direct2d`]  | Fig. 2(a), node loop inner         | direct 2-D | Fig. 4 all-peers   |
//! | [`indirect`]  | Fig. 3(a) (provable order)         | indirect   | indirect prepush   |
//! | [`indirect3d`]| Fig. 3(a) verbatim (mod/div map)   | indirect   | oracle-assisted    |
//! | [`fft`]       | multi-dimensional FFT transpose    | direct 2-D | Fig. 4 all-peers   |
//! | [`adi`]       | finite differences (ADI transpose) | direct 2-D | Fig. 4 all-peers   |
//! | [`interchange`]| §3.5 node-loop-outermost pair     | direct 2-D | interchange/fallback|
//! | [`negative`]  | programs the tool must decline     | —          | rejection paths    |
//!
//! [`registry`] enumerates every transformable workload by stable string
//! name (with [`SizeClass`]-selectable scale), so sweep grids and JSON
//! artifacts can name workloads as data.

use fir::Program;

/// Common interface for generated workloads.
pub trait Workload {
    /// Human-readable name (used in harness output).
    fn name(&self) -> &'static str;
    /// The program source text.
    fn source(&self) -> String;
    /// Symbol values for the transformation's analysis context.
    fn context_pairs(&self) -> Vec<(String, i64)>;
    /// Arrays whose final contents constitute the program's *output* for
    /// equivalence checking (dead arrays of the transformed variant are
    /// excluded by the caller using the transform report).
    fn output_arrays(&self) -> Vec<String>;

    /// Parse the source (panics on generator bugs — generated programs
    /// must always parse).
    fn program(&self) -> Program {
        let src = self.source();
        fir::parse_validated(&src).unwrap_or_else(|e| {
            panic!(
                "workload `{}` generated invalid source:\n{}\n---\n{}",
                self.name(),
                e.render(&src),
                src
            )
        })
    }

    /// Build a `depan` context from [`Workload::context_pairs`].
    fn context(&self) -> depan::Context {
        let mut ctx = depan::Context::new();
        for (k, v) in self.context_pairs() {
            ctx.set(&k, v);
        }
        ctx
    }
}

pub mod adi;
pub mod direct;
pub mod direct2d;
pub mod fft;
pub mod indirect;
pub mod indirect3d;
pub mod interchange;
pub mod negative;

/// Which of a workload's canonical sizes to generate.
///
/// `Small` keeps debug-mode simulation in the milliseconds (test grids);
/// `Medium` is the smallest scale where pre-push reliably wins on the
/// RDMA-capable stack (differential tests); `Standard` is Figure-1
/// scale, where overlap matters on both stacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeClass {
    Small,
    Medium,
    Standard,
}

impl SizeClass {
    /// Stable lowercase identifier (used by sweep specs and JSON).
    pub fn id(self) -> &'static str {
        match self {
            SizeClass::Small => "small",
            SizeClass::Medium => "medium",
            SizeClass::Standard => "standard",
        }
    }

    pub fn parse(s: &str) -> Option<SizeClass> {
        match s {
            "small" => Some(SizeClass::Small),
            "medium" => Some(SizeClass::Medium),
            "standard" => Some(SizeClass::Standard),
            _ => None,
        }
    }
}

/// One registry row: a workload family constructible by name, so sweep
/// grids, JSON artifacts, and command lines can reference workloads as
/// strings instead of concrete types.
#[derive(Clone)]
pub struct RegistryEntry {
    /// Stable short name (grid/JSON key) — distinct from the descriptive
    /// [`Workload::name`] the harness prints.
    pub name: &'static str,
    pub description: &'static str,
    /// The smallest rank count at which pre-pushing is guaranteed not to
    /// be slower than the original at `Medium`+ size on the RDMA-capable
    /// stack (`None` = no such guarantee). `direct` (owner-sends) used to
    /// lose badly to incast congestion on high-overhead stacks — the
    /// K-selection predictor now *declines* such sites (emitting the
    /// original program), which upgrades it to a guarantee at np >= 2;
    /// `interchange-blocked` gained the same guarantee once the §3.5
    /// per-column fallback was routed through the predictor (it used to
    /// bypass K-selection and knowingly ship 0.21x–0.98x slowdowns; the
    /// fallback now only applies where it measurably wins — zero-copy
    /// stacks with >= 6 senders per owner and >= 16 KiB columns — and
    /// every other site keeps the original program);
    /// `interchange-legal` needs np >= 4 for the all-peers pipeline
    /// to have more than one partner. All stay *correct* — only the
    /// no-slowdown assertion in the differential tests is scoped by this.
    pub min_overlap_np: Option<usize>,
    pub make: fn(SizeClass, usize) -> Box<dyn Workload>,
}

macro_rules! registry_entry {
    ($name:literal, $desc:literal, $min_np:expr, $ty:ty) => {
        RegistryEntry {
            name: $name,
            description: $desc,
            min_overlap_np: $min_np,
            make: |size, np| match size {
                SizeClass::Small => Box::new(<$ty>::small(np)),
                SizeClass::Medium => Box::new(<$ty>::medium(np)),
                SizeClass::Standard => Box::new(<$ty>::standard(np)),
            },
        }
    };
}

/// Every transformable workload, by stable name. Order is the canonical
/// grid order (deterministic sweeps depend on it).
pub fn registry() -> Vec<RegistryEntry> {
    vec![
        registry_entry!(
            "direct",
            "Fig. 2(a) 1-D kernel; tiled owner-sends strategy",
            Some(2),
            direct::Direct1d
        ),
        registry_entry!(
            "direct2d",
            "Fig. 2(a) with the node loop inner; Fig. 4 all-peers exchange",
            Some(2),
            direct2d::Direct2d
        ),
        registry_entry!(
            "indirect",
            "Fig. 3(a) compute-copy pattern, provable order preservation",
            Some(2),
            indirect::Indirect2d
        ),
        registry_entry!(
            "indirect3d",
            "Fig. 3(a) verbatim mod/div map; oracle-assisted",
            Some(2),
            indirect3d::Indirect3d
        ),
        registry_entry!(
            "fft",
            "multi-dimensional FFT transpose",
            Some(2),
            fft::FftTranspose
        ),
        registry_entry!(
            "adi",
            "finite differences (ADI transpose)",
            Some(2),
            adi::AdiStencil
        ),
        registry_entry!(
            "interchange-legal",
            "node loop outermost, interchange provably legal (§3.5)",
            Some(4),
            interchange::InterchangeLegal
        ),
        registry_entry!(
            "interchange-blocked",
            "node loop outermost, stencil blocks the interchange (§3.5)",
            Some(2),
            interchange::InterchangeBlocked
        ),
    ]
}

/// Look up a registry entry by its stable name.
pub fn find(name: &str) -> Option<RegistryEntry> {
    registry().into_iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_parses_and_validates() {
        let np = 4;
        let all: Vec<Box<dyn Workload>> = vec![
            Box::new(direct::Direct1d::small(np)),
            Box::new(direct2d::Direct2d::small(np)),
            Box::new(indirect::Indirect2d::small(np)),
            Box::new(indirect3d::Indirect3d::small(np)),
            Box::new(fft::FftTranspose::small(np)),
            Box::new(adi::AdiStencil::small(np)),
        ];
        for w in &all {
            let _ = w.program(); // panics on generator bugs
            assert!(!w.output_arrays().is_empty());
            assert!(w.context_pairs().iter().any(|(k, _)| k == "np"));
        }
    }

    #[test]
    fn registry_covers_both_sizes_and_finds_by_name() {
        let reg = registry();
        assert!(reg.len() >= 8);
        let mut seen = std::collections::HashSet::new();
        for e in &reg {
            assert!(seen.insert(e.name), "duplicate registry name {}", e.name);
            for size in [SizeClass::Small, SizeClass::Medium, SizeClass::Standard] {
                let w = (e.make)(size, 4);
                let _ = w.program();
                assert!(!w.output_arrays().is_empty());
            }
        }
        assert!(find("direct2d").is_some());
        assert!(find("no-such-workload").is_none());
    }

    #[test]
    fn size_class_ids_roundtrip() {
        for s in [SizeClass::Small, SizeClass::Medium, SizeClass::Standard] {
            assert_eq!(SizeClass::parse(s.id()), Some(s));
        }
        assert_eq!(SizeClass::parse("huge"), None);
    }
}
