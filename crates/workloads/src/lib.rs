//! # workloads — parameterized mini-Fortran programs for the evaluation
//!
//! The paper's §2 names the application class: "Sorting, LU Factorization,
//! Finite differences, and multi-dimensional FFT constitute examples of
//! algorithms that could fit this abstract form". Each module generates a
//! program in that class, sized by a `Params`-style struct, plus the
//! matching symbol values for the transformation's analysis context via
//! [`Workload::context_pairs`].
//!
//! | module        | paper artefact                     | pattern    | strategy exercised |
//! |---------------|------------------------------------|------------|--------------------|
//! | [`direct`]    | Fig. 2(a) abstract kernel          | direct 1-D | tiled owner sends  |
//! | [`direct2d`]  | Fig. 2(a), node loop inner         | direct 2-D | Fig. 4 all-peers   |
//! | [`indirect`]  | Fig. 3(a) (provable order)         | indirect   | indirect prepush   |
//! | [`indirect3d`]| Fig. 3(a) verbatim (mod/div map)   | indirect   | oracle-assisted    |
//! | [`fft`]       | multi-dimensional FFT transpose    | direct 2-D | Fig. 4 all-peers   |
//! | [`adi`]       | finite differences (ADI transpose) | direct 2-D | Fig. 4 all-peers   |
//! | [`negative`]  | programs the tool must decline     | —          | rejection paths    |

use fir::Program;

/// Common interface for generated workloads.
pub trait Workload {
    /// Human-readable name (used in harness output).
    fn name(&self) -> &'static str;
    /// The program source text.
    fn source(&self) -> String;
    /// Symbol values for the transformation's analysis context.
    fn context_pairs(&self) -> Vec<(String, i64)>;
    /// Arrays whose final contents constitute the program's *output* for
    /// equivalence checking (dead arrays of the transformed variant are
    /// excluded by the caller using the transform report).
    fn output_arrays(&self) -> Vec<String>;

    /// Parse the source (panics on generator bugs — generated programs
    /// must always parse).
    fn program(&self) -> Program {
        let src = self.source();
        fir::parse_validated(&src).unwrap_or_else(|e| {
            panic!(
                "workload `{}` generated invalid source:\n{}\n---\n{}",
                self.name(),
                e.render(&src),
                src
            )
        })
    }

    /// Build a `depan` context from [`Workload::context_pairs`].
    fn context(&self) -> depan::Context {
        let mut ctx = depan::Context::new();
        for (k, v) in self.context_pairs() {
            ctx.set(&k, v);
        }
        ctx
    }
}

pub mod adi;
pub mod direct;
pub mod direct2d;
pub mod fft;
pub mod indirect;
pub mod indirect3d;
pub mod negative;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_parses_and_validates() {
        let np = 4;
        let all: Vec<Box<dyn Workload>> = vec![
            Box::new(direct::Direct1d::small(np)),
            Box::new(direct2d::Direct2d::small(np)),
            Box::new(indirect::Indirect2d::small(np)),
            Box::new(indirect3d::Indirect3d::small(np)),
            Box::new(fft::FftTranspose::small(np)),
            Box::new(adi::AdiStencil::small(np)),
        ];
        for w in &all {
            let _ = w.program(); // panics on generator bugs
            assert!(!w.output_arrays().is_empty());
            assert!(w.context_pairs().iter().any(|(k, _)| k == "np"));
        }
    }
}
