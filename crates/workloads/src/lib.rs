//! # workloads — parameterized mini-Fortran programs for the evaluation
//!
//! The paper's §2 names the application class: "Sorting, LU Factorization,
//! Finite differences, and multi-dimensional FFT constitute examples of
//! algorithms that could fit this abstract form". Each module generates a
//! program in that class, sized by a `Params`-style struct, plus the
//! matching symbol values for the transformation's analysis context via
//! [`Workload::context_pairs`].
//!
//! | module        | paper artefact                     | pattern    | strategy exercised |
//! |---------------|------------------------------------|------------|--------------------|
//! | [`direct`]    | Fig. 2(a) abstract kernel          | direct 1-D | tiled owner sends  |
//! | [`direct2d`]  | Fig. 2(a), node loop inner         | direct 2-D | Fig. 4 all-peers   |
//! | [`indirect`]  | Fig. 3(a) (provable order)         | indirect   | indirect prepush   |
//! | [`indirect3d`]| Fig. 3(a) verbatim (mod/div map)   | indirect   | oracle-assisted    |
//! | [`fft`]       | multi-dimensional FFT transpose    | direct 2-D | Fig. 4 all-peers   |
//! | [`adi`]       | finite differences (ADI transpose) | direct 2-D | Fig. 4 all-peers   |
//! | [`interchange`]| §3.5 node-loop-outermost pair     | direct 2-D | interchange/fallback|
//! | [`negative`]  | programs the tool must decline     | —          | rejection paths    |
//!
//! [`registry`] enumerates every transformable workload by stable string
//! name (with [`SizeClass`]-selectable scale), so sweep grids and JSON
//! artifacts can name workloads as data.

use fir::Program;

/// Common interface for generated workloads.
pub trait Workload {
    /// Human-readable name (used in harness output).
    fn name(&self) -> &'static str;
    /// The program source text.
    fn source(&self) -> String;
    /// Symbol values for the transformation's analysis context.
    fn context_pairs(&self) -> Vec<(String, i64)>;
    /// Arrays whose final contents constitute the program's *output* for
    /// equivalence checking (dead arrays of the transformed variant are
    /// excluded by the caller using the transform report).
    fn output_arrays(&self) -> Vec<String>;

    /// Parse the source (panics on generator bugs — generated programs
    /// must always parse).
    fn program(&self) -> Program {
        let src = self.source();
        fir::parse_validated(&src).unwrap_or_else(|e| {
            panic!(
                "workload `{}` generated invalid source:\n{}\n---\n{}",
                self.name(),
                e.render(&src),
                src
            )
        })
    }

    /// Build a `depan` context from [`Workload::context_pairs`].
    fn context(&self) -> depan::Context {
        let mut ctx = depan::Context::new();
        for (k, v) in self.context_pairs() {
            ctx.set(&k, v);
        }
        ctx
    }
}

pub mod adi;
pub mod direct;
pub mod direct2d;
pub mod fft;
pub mod indirect;
pub mod indirect3d;
pub mod interchange;
pub mod negative;

/// Which of a workload's canonical sizes to generate.
///
/// `Small` keeps debug-mode simulation in the milliseconds (test grids);
/// `Medium` is the smallest scale where pre-push reliably wins on the
/// RDMA-capable stack (differential tests); `Standard` is Figure-1
/// scale, where overlap matters on both stacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeClass {
    Small,
    Medium,
    Standard,
}

impl SizeClass {
    /// Stable lowercase identifier (used by sweep specs and JSON).
    pub fn id(self) -> &'static str {
        match self {
            SizeClass::Small => "small",
            SizeClass::Medium => "medium",
            SizeClass::Standard => "standard",
        }
    }

    pub fn parse(s: &str) -> Option<SizeClass> {
        match s {
            "small" => Some(SizeClass::Small),
            "medium" => Some(SizeClass::Medium),
            "standard" => Some(SizeClass::Standard),
            _ => None,
        }
    }
}

/// One registry row: a workload family constructible by name, so sweep
/// grids, JSON artifacts, and command lines can reference workloads as
/// strings instead of concrete types.
#[derive(Clone)]
pub struct RegistryEntry {
    /// Stable short name (grid/JSON key) — distinct from the descriptive
    /// [`Workload::name`] the harness prints.
    pub name: &'static str,
    pub description: &'static str,
    /// The smallest rank count at which pre-pushing is guaranteed not to
    /// be slower than the original at `Medium`+ size on the RDMA-capable
    /// stack (`None` = no such guarantee). `direct` (owner-sends) used to
    /// lose badly to incast congestion on high-overhead stacks — the
    /// K-selection predictor now *declines* such sites (emitting the
    /// original program), which upgrades it to a guarantee at np >= 2;
    /// `interchange-blocked` gained the same guarantee once the §3.5
    /// per-column fallback was routed through the predictor (it used to
    /// bypass K-selection and knowingly ship 0.21x–0.98x slowdowns; the
    /// fallback now only applies where it measurably wins — zero-copy
    /// stacks with >= 6 senders per owner and >= 16 KiB columns — and
    /// every other site keeps the original program);
    /// `interchange-legal` needs np >= 4 for the all-peers pipeline
    /// to have more than one partner. All stay *correct* — only the
    /// no-slowdown assertion in the differential tests is scoped by this.
    pub min_overlap_np: Option<usize>,
    pub make: fn(SizeClass, usize) -> Box<dyn Workload>,
}

macro_rules! registry_entry {
    ($name:literal, $desc:literal, $min_np:expr, $ty:ty) => {
        RegistryEntry {
            name: $name,
            description: $desc,
            min_overlap_np: $min_np,
            make: |size, np| match size {
                SizeClass::Small => Box::new(<$ty>::small(np)),
                SizeClass::Medium => Box::new(<$ty>::medium(np)),
                SizeClass::Standard => Box::new(<$ty>::standard(np)),
            },
        }
    };
}

/// Every transformable workload, by stable name. Order is the canonical
/// grid order (deterministic sweeps depend on it).
pub fn registry() -> Vec<RegistryEntry> {
    vec![
        registry_entry!(
            "direct",
            "Fig. 2(a) 1-D kernel; tiled owner-sends strategy",
            Some(2),
            direct::Direct1d
        ),
        registry_entry!(
            "direct2d",
            "Fig. 2(a) with the node loop inner; Fig. 4 all-peers exchange",
            Some(2),
            direct2d::Direct2d
        ),
        registry_entry!(
            "indirect",
            "Fig. 3(a) compute-copy pattern, provable order preservation",
            Some(2),
            indirect::Indirect2d
        ),
        registry_entry!(
            "indirect3d",
            "Fig. 3(a) verbatim mod/div map; oracle-assisted",
            Some(2),
            indirect3d::Indirect3d
        ),
        registry_entry!(
            "fft",
            "multi-dimensional FFT transpose",
            Some(2),
            fft::FftTranspose
        ),
        registry_entry!(
            "adi",
            "finite differences (ADI transpose)",
            Some(2),
            adi::AdiStencil
        ),
        registry_entry!(
            "interchange-legal",
            "node loop outermost, interchange provably legal (§3.5)",
            Some(4),
            interchange::InterchangeLegal
        ),
        registry_entry!(
            "interchange-blocked",
            "node loop outermost, stencil blocks the interchange (§3.5)",
            Some(2),
            interchange::InterchangeBlocked
        ),
    ]
}

/// Look up a registry entry by its stable name.
pub fn find(name: &str) -> Option<RegistryEntry> {
    registry().into_iter().find(|e| e.name == name)
}

// -------------------------------------------------------- fingerprinting

/// FNV-1a 64-bit over a byte string: the dependency-free content hash the
/// sweep engine keys caches and incremental-reuse decisions on. Stable
/// across runs, platforms, and process restarts (unlike `std`'s seeded
/// `DefaultHasher`), which is what lets hashes live in committed
/// artifacts.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(0xcbf2_9ce4_8422_2325, bytes)
}

/// Continue an FNV-1a hash from a previous digest (for hashing a sequence
/// of fields without concatenating them into one buffer).
pub fn fnv1a_extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A content fingerprint of the workload registry: every entry's stable
/// name, description, overlap guarantee, and — the part that actually
/// tracks generator code — the generated source text and analysis context
/// of each workload at a canonical probe point (small size, np = 4).
/// Any change to a generator's emitted program, an entry's metadata, or
/// the registry's membership/order changes this value, which invalidates
/// every cached/reused scenario row keyed on it. Computed once per
/// process (the sources are cheap string formatting, but there is no
/// reason to repeat it per scenario).
pub fn registry_fingerprint() -> u64 {
    use std::sync::OnceLock;
    static FP: OnceLock<u64> = OnceLock::new();
    *FP.get_or_init(compute_registry_fingerprint)
}

fn compute_registry_fingerprint() -> u64 {
    let mut h = fnv1a(b"workload-registry/v1");
    for e in registry() {
        h = fnv1a_extend(h, e.name.as_bytes());
        h = fnv1a_extend(h, e.description.as_bytes());
        h = fnv1a_extend(h, format!("{:?}", e.min_overlap_np).as_bytes());
        let w = (e.make)(SizeClass::Small, 4);
        h = fnv1a_extend(h, w.source().as_bytes());
        for (k, v) in w.context_pairs() {
            h = fnv1a_extend(h, k.as_bytes());
            h = fnv1a_extend(h, &v.to_le_bytes());
        }
        for a in w.output_arrays() {
            h = fnv1a_extend(h, a.as_bytes());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_parses_and_validates() {
        let np = 4;
        let all: Vec<Box<dyn Workload>> = vec![
            Box::new(direct::Direct1d::small(np)),
            Box::new(direct2d::Direct2d::small(np)),
            Box::new(indirect::Indirect2d::small(np)),
            Box::new(indirect3d::Indirect3d::small(np)),
            Box::new(fft::FftTranspose::small(np)),
            Box::new(adi::AdiStencil::small(np)),
        ];
        for w in &all {
            let _ = w.program(); // panics on generator bugs
            assert!(!w.output_arrays().is_empty());
            assert!(w.context_pairs().iter().any(|(k, _)| k == "np"));
        }
    }

    #[test]
    fn registry_covers_both_sizes_and_finds_by_name() {
        let reg = registry();
        assert!(reg.len() >= 8);
        let mut seen = std::collections::HashSet::new();
        for e in &reg {
            assert!(seen.insert(e.name), "duplicate registry name {}", e.name);
            for size in [SizeClass::Small, SizeClass::Medium, SizeClass::Standard] {
                let w = (e.make)(size, 4);
                let _ = w.program();
                assert!(!w.output_arrays().is_empty());
            }
        }
        assert!(find("direct2d").is_some());
        assert!(find("no-such-workload").is_none());
    }

    #[test]
    fn fnv1a_is_the_reference_function() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
        // Extension composes exactly like concatenation.
        assert_eq!(fnv1a_extend(fnv1a(b"foo"), b"bar"), fnv1a(b"foobar"));
    }

    #[test]
    fn registry_fingerprint_is_stable_within_a_process() {
        let a = registry_fingerprint();
        let b = registry_fingerprint();
        assert_eq!(a, b);
        assert_ne!(a, 0);
        // And it genuinely covers the generated sources: recomputing from
        // scratch agrees with the cached value.
        assert_eq!(a, compute_registry_fingerprint());
    }

    #[test]
    fn size_class_ids_roundtrip() {
        for s in [SizeClass::Small, SizeClass::Medium, SizeClass::Standard] {
            assert_eq!(SizeClass::parse(s.id()), Some(s));
        }
        assert_eq!(SizeClass::parse("huge"), None);
    }
}
