//! Programs the Compuniformer must *decline* (or whose alltoall sites it
//! must reject outright). Each case isolates one safety rule from §3; the
//! test suite asserts the tool refuses every one of them — miscompiling
//! any of these would be a correctness bug.

/// A named negative case with the reason the tool must give (substring).
pub struct NegativeCase {
    pub name: &'static str,
    pub source: String,
    /// A fragment that must appear among the decline/rejection reasons.
    pub expect_reason: &'static str,
}

/// All negative cases, sized for `np` ranks.
pub fn cases(np: usize) -> Vec<NegativeCase> {
    let n = np * 8;
    vec![
        NegativeCase {
            name: "accumulator-overwrite",
            source: format!(
                "\
program main
  real :: as({n}), ar({n})
  do iy = 1, 3
    do ix = 1, {n}
      as(1) = as(1) + ix
    end do
    call mpi_alltoall(as, 8, ar)
  end do
end program
"
            ),
            expect_reason: "tile safety",
        },
        NegativeCase {
            name: "conditional-write",
            source: format!(
                "\
program main
  real :: as({n}), ar({n})
  do iy = 1, 3
    do ix = 1, {n}
      if (mod(ix, 2) == 0) then
        as(ix) = ix
      end if
    end do
    call mpi_alltoall(as, 8, ar)
  end do
end program
"
            ),
            expect_reason: "conditional",
        },
        NegativeCase {
            name: "non-affine-subscript",
            source: format!(
                "\
program main
  real :: as({n}), ar({n})
  do iy = 1, 3
    do ix = 1, {n}
      as(mod(ix * 7, {n}) + 1) = ix
    end do
    call mpi_alltoall(as, 8, ar)
  end do
end program
"
            ),
            expect_reason: "affine",
        },
        NegativeCase {
            name: "comm-inside-conditional",
            source: format!(
                "\
program main
  real :: as({n}), ar({n})
  do ix = 1, {n}
    as(ix) = ix
  end do
  if (mynum == 0) then
    call mpi_alltoall(as, 8, ar)
  end if
end program
"
            ),
            expect_reason: "conditional",
        },
        NegativeCase {
            name: "gap-between-loop-and-comm",
            source: format!(
                "\
program main
  real :: as({n}), ar({n})
  integer :: flag
  do iy = 1, 3
    do ix = 1, {n}
      as(ix) = ix * iy
    end do
    flag = iy
    call mpi_alltoall(as, 8, ar)
  end do
end program
"
            ),
            expect_reason: "statement(s) between",
        },
        NegativeCase {
            name: "recv-array-read-in-loop",
            source: format!(
                "\
program main
  real :: as({n}), ar({n})
  do iy = 1, 3
    do ix = 1, {n}
      as(ix) = ar(ix) + iy
    end do
    call mpi_alltoall(as, 8, ar)
  end do
end program
"
            ),
            expect_reason: "accessed inside",
        },
        NegativeCase {
            name: "strided-write-with-holes",
            source: format!(
                "\
program main
  real :: as({n2}), ar({n2})
  do iy = 1, 3
    do ix = 1, {n}
      as(2 * ix) = ix
    end do
    call mpi_alltoall(as, 16, ar)
  end do
end program
",
                n2 = 2 * n
            ),
            expect_reason: "cover",
        },
        NegativeCase {
            name: "partial-coverage",
            source: format!(
                "\
program main
  real :: as({n}), ar({n})
  do iy = 1, 3
    do ix = 1, {h}
      as(ix) = ix
    end do
    call mpi_alltoall(as, 8, ar)
  end do
end program
",
                h = n / 2
            ),
            expect_reason: "cover",
        },
        NegativeCase {
            name: "non-unit-step-loop",
            source: format!(
                "\
program main
  real :: as({n}), ar({n})
  do iy = 1, 3
    do ix = 1, {n}, 2
      as(ix) = ix
    end do
    call mpi_alltoall(as, 8, ar)
  end do
end program
"
            ),
            expect_reason: "non-unit step",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cases_parse_and_validate() {
        for c in cases(4) {
            fir::parse_validated(&c.source).unwrap_or_else(|e| {
                panic!("negative case `{}` is invalid: {e}", c.name)
            });
        }
    }

    #[test]
    fn case_count_stable() {
        assert_eq!(cases(4).len(), 9);
    }
}
