//! Programs the Compuniformer must *decline* (or whose alltoall sites it
//! must reject outright). Each case isolates one safety rule from §3; the
//! test suite asserts the tool refuses every one of them — miscompiling
//! any of these would be a correctness bug.

/// A named negative case with the reason the tool must give (substring).
pub struct NegativeCase {
    pub name: &'static str,
    pub source: String,
    /// A fragment that must appear among the decline/rejection reasons.
    pub expect_reason: &'static str,
}

/// All negative cases, sized for `np` ranks.
pub fn cases(np: usize) -> Vec<NegativeCase> {
    let n = np * 8;
    vec![
        NegativeCase {
            name: "accumulator-overwrite",
            source: format!(
                "\
program main
  real :: as({n}), ar({n})
  do iy = 1, 3
    do ix = 1, {n}
      as(1) = as(1) + ix
    end do
    call mpi_alltoall(as, 8, ar)
  end do
end program
"
            ),
            expect_reason: "tile safety",
        },
        NegativeCase {
            name: "conditional-write",
            source: format!(
                "\
program main
  real :: as({n}), ar({n})
  do iy = 1, 3
    do ix = 1, {n}
      if (mod(ix, 2) == 0) then
        as(ix) = ix
      end if
    end do
    call mpi_alltoall(as, 8, ar)
  end do
end program
"
            ),
            expect_reason: "conditional",
        },
        NegativeCase {
            name: "non-affine-subscript",
            source: format!(
                "\
program main
  real :: as({n}), ar({n})
  do iy = 1, 3
    do ix = 1, {n}
      as(mod(ix * 7, {n}) + 1) = ix
    end do
    call mpi_alltoall(as, 8, ar)
  end do
end program
"
            ),
            expect_reason: "affine",
        },
        NegativeCase {
            name: "comm-inside-conditional",
            source: format!(
                "\
program main
  real :: as({n}), ar({n})
  do ix = 1, {n}
    as(ix) = ix
  end do
  if (mynum == 0) then
    call mpi_alltoall(as, 8, ar)
  end if
end program
"
            ),
            expect_reason: "conditional",
        },
        NegativeCase {
            name: "gap-between-loop-and-comm",
            source: format!(
                "\
program main
  real :: as({n}), ar({n})
  integer :: flag
  do iy = 1, 3
    do ix = 1, {n}
      as(ix) = ix * iy
    end do
    flag = iy
    call mpi_alltoall(as, 8, ar)
  end do
end program
"
            ),
            expect_reason: "statement(s) between",
        },
        NegativeCase {
            name: "recv-array-read-in-loop",
            source: format!(
                "\
program main
  real :: as({n}), ar({n})
  do iy = 1, 3
    do ix = 1, {n}
      as(ix) = ar(ix) + iy
    end do
    call mpi_alltoall(as, 8, ar)
  end do
end program
"
            ),
            expect_reason: "accessed inside",
        },
        NegativeCase {
            name: "strided-write-with-holes",
            source: format!(
                "\
program main
  real :: as({n2}), ar({n2})
  do iy = 1, 3
    do ix = 1, {n}
      as(2 * ix) = ix
    end do
    call mpi_alltoall(as, 16, ar)
  end do
end program
",
                n2 = 2 * n
            ),
            expect_reason: "cover",
        },
        NegativeCase {
            name: "partial-coverage",
            source: format!(
                "\
program main
  real :: as({n}), ar({n})
  do iy = 1, 3
    do ix = 1, {h}
      as(ix) = ix
    end do
    call mpi_alltoall(as, 8, ar)
  end do
end program
",
                h = n / 2
            ),
            expect_reason: "cover",
        },
        NegativeCase {
            name: "non-unit-step-loop",
            source: format!(
                "\
program main
  real :: as({n}), ar({n})
  do iy = 1, 3
    do ix = 1, {n}, 2
      as(ix) = ix
    end do
    call mpi_alltoall(as, 8, ar)
  end do
end program
"
            ),
            expect_reason: "non-unit step",
        },
    ]
}

/// A program the *static communication verifier* (`analyzer`) must
/// reject, with the pinned diagnostic code it must produce. Distinct from
/// [`cases`]: those programs make the transformation decline; these are
/// hand-broken communication patterns the analyzer must catch in anything
/// the pipeline is asked to certify.
pub struct AnalyzerCase {
    pub name: &'static str,
    pub source: String,
    /// The diagnostic code (e.g. `"A003"`) the analyzer must report.
    /// Golden-tested: the code is part of the tool's contract.
    pub expect_code: &'static str,
}

/// Communication-safety negative corpus, sized for `np` ranks. One case
/// per diagnostic class the verifier can produce.
pub fn analyzer_cases(np: usize) -> Vec<AnalyzerCase> {
    let n = np * 8;
    vec![
        AnalyzerCase {
            // The isend is posted per peer but the final waitall is
            // missing: the send is still in flight at program end.
            name: "a001-unwaited-isend",
            source: format!(
                "\
program main
  real :: as({n})
  do ix = 1, {n}
    as(ix) = ix * 0.5
  end do
  call mpi_isend(as(1:8), 8, mod(mynum + 1, np), 7)
end program
"
            ),
            expect_code: "A001",
        },
        AnalyzerCase {
            // The irecv has no matching wait of any kind.
            name: "a002-unwaited-irecv",
            source: format!(
                "\
program main
  real :: ar({n})
  call mpi_irecv(ar(1:8), 8, mod(np + mynum - 1, np), 7)
end program
"
            ),
            expect_code: "A002",
        },
        AnalyzerCase {
            // The compute loop keeps writing the first slot of `as`
            // after the isend posted that very region.
            name: "a003-overwrite-inflight-send",
            source: format!(
                "\
program main
  real :: as({n})
  do ix = 1, {n}
    as(ix) = ix * 0.5
  end do
  call mpi_isend(as(1:8), 8, mod(mynum + 1, np), 7)
  do ix = 1, 8
    as(ix) = 0.0
  end do
  call mpi_waitall()
end program
"
            ),
            expect_code: "A003",
        },
        AnalyzerCase {
            // Reads the receive buffer before the wait: the value raced
            // with the network.
            name: "a004-read-inflight-recv",
            source: format!(
                "\
program main
  real :: ar({n})
  real :: acc({n})
  call mpi_irecv(ar(1:8), 8, mod(np + mynum - 1, np), 7)
  do ix = 1, 8
    acc(ix) = ar(ix)
  end do
  call mpi_waitall()
end program
"
            ),
            expect_code: "A004",
        },
        AnalyzerCase {
            // Only rank 0 enters the barrier: every other rank deadlocks.
            name: "a005-rank-divergent-barrier",
            source: format!(
                "\
program main
  real :: as({n})
  do ix = 1, {n}
    as(ix) = ix
  end do
  if (mynum == 0) then
    call mpi_barrier()
  end if
end program
"
            ),
            expect_code: "A005",
        },
        AnalyzerCase {
            // The condition reads array contents the analysis cannot
            // track, and one arm posts a send the other does not — the
            // pending-communication state differs across the join.
            name: "a006-one-sided-isend-branch",
            source: format!(
                "\
program main
  integer :: k(1)
  real :: as({n})
  if (k(1) == 1) then
    call mpi_isend(as(1:8), 8, mod(mynum + 1, np), 7)
  end if
  call mpi_waitall()
end program
"
            ),
            expect_code: "A006",
        },
        AnalyzerCase {
            // The comm loop's trip count comes from array contents the
            // analysis does not track, so the verifier cannot enumerate
            // the posts. (A never-written *scalar* bound would be exactly
            // zero under the deterministic-zero convention — array reads
            // are the genuinely unverifiable case.)
            name: "a007-unverifiable-comm-loop-bound",
            source: format!(
                "\
program main
  integer :: k(1)
  real :: as({n})
  do iy = 1, k(1)
    call mpi_isend(as(1:8), 8, mod(mynum + iy, np), 7)
  end do
  call mpi_waitall()
end program
"
            ),
            expect_code: "A007",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cases_parse_and_validate() {
        for c in cases(4) {
            fir::parse_validated(&c.source).unwrap_or_else(|e| {
                panic!("negative case `{}` is invalid: {e}", c.name)
            });
        }
    }

    #[test]
    fn case_count_stable() {
        assert_eq!(cases(4).len(), 9);
    }

    #[test]
    fn all_analyzer_cases_parse_and_validate() {
        for c in analyzer_cases(4) {
            fir::parse_validated(&c.source).unwrap_or_else(|e| {
                panic!("analyzer case `{}` is invalid: {e}", c.name)
            });
        }
    }

    #[test]
    fn analyzer_case_count_stable() {
        assert_eq!(analyzer_cases(4).len(), 7);
    }
}
