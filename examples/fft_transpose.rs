//! Distributed 2-D FFT transpose (one of the paper's §2 motivating
//! algorithms): the local butterfly passes are computation, the transpose
//! is an `MPI_ALLTOALL`. This example transforms the kernel automatically
//! and sweeps the rank count, printing the speedup pre-pushing delivers on
//! each interconnect model.
//!
//! ```text
//! cargo run --release --example fft_transpose
//! ```

use compuniformer::{transform, Options};
use interp::run_program;
use workloads::{fft::FftTranspose, Workload};

fn main() {
    println!("2-D FFT transpose: pre-push speedup vs rank count\n");
    println!(
        "{:>4} {:>12} {:>12} {:>8}   {:>12} {:>12} {:>8}",
        "np", "MPICH orig", "MPICH pre", "gain", "GM orig", "GM pre", "gain"
    );

    for np in [2usize, 4, 8, 16] {
        let w = FftTranspose::standard(np);
        let program = w.program();
        let opts = Options {
            context: w.context(),
            ..Default::default()
        };
        let out = transform(&program, &opts).expect("fft kernel transforms");

        let mut row = format!("{np:>4}");
        for model in [
            clustersim::NetworkModel::mpich(),
            clustersim::NetworkModel::mpich_gm(),
        ] {
            let base = run_program(&program, np, &model).expect("original");
            let pre = run_program(&out.program, np, &model).expect("transformed");
            for rank in 0..np {
                assert_eq!(base.outputs[rank], pre.outputs[rank]);
            }
            let t0 = base.report.makespan();
            let t1 = pre.report.makespan();
            row.push_str(&format!(
                " {:>12} {:>12} {:>7.2}x",
                t0.to_string(),
                t1.to_string(),
                t0.as_ns() as f64 / t1.as_ns() as f64
            ));
        }
        println!("{row}");
    }

    println!(
        "\nEvery row verified output-identical between original and transformed. \
         The gain grows with np on the RDMA model: more peers means more \
         transfer time for the NIC to hide."
    );
}
