//! A/B micro-benchmark of the `interp::opt` pass: runs the same programs
//! with the optimizer off and on, printing host wall-clock for each. The
//! makespans (virtual times) are asserted identical — the pass is
//! unobservable except to your watch.
//!
//! ```text
//! cargo run --release --example opt_bench
//! ```

use clustersim::NetworkModel;
use interp::{run_program_opts, Options};
use std::time::Instant;

fn bench(label: &str, src: &str) {
    let program = fir::parse(src).unwrap();
    let model = NetworkModel::mpich_gm();
    let mut times = [0.0f64; 2];
    let mut makespans = [clustersim::SimTime::ZERO; 2];
    // Two rounds; the first warms caches, the second is reported.
    for round in 0..2 {
        for (i, optimize) in [false, true].into_iter().enumerate() {
            let opts = Options {
                optimize,
                ..Default::default()
            };
            let t0 = Instant::now();
            let r = run_program_opts(&program, 1, &model, &opts).unwrap();
            let dt = t0.elapsed().as_secs_f64();
            if round == 1 {
                times[i] = dt;
                makespans[i] = r.report.makespan();
            }
            std::hint::black_box(r);
        }
    }
    assert_eq!(makespans[0], makespans[1], "virtual times must not move");
    println!(
        "{label:24} unopt {:8.1} ms  opt {:8.1} ms  ({:.2}x)  makespan {}",
        times[0] * 1e3,
        times[1] * 1e3,
        times[0] / times[1],
        makespans[0],
    );
}

fn main() {
    bench(
        "scalar accumulate",
        "program main\n  real :: a(1)\n  do i = 1, 4000000\n    t = t + 1.0\n  end do\n  a(1) = t\nend program",
    );
    bench(
        "sum of 16 terms",
        "program main\n  real :: a(1)\n  do i = 1, 4000000\n    t = i+i+i+i+i+i+i+i+i+i+i+i+i+i+i+i\n  end do\n  a(1) = t\nend program",
    );
    bench(
        "array stores",
        "program main\n  real :: a(4000000)\n  do i = 1, 4000000\n    a(i) = i * 0.5\n  end do\nend program",
    );
    bench(
        "direct2d-shaped nest",
        "program main\n  real :: as(4096, 8), ar(4096, 8)\n  do iy = 1, 4\n    do ix = 1, 4096\n      do iz = 1, 8\n        t = 0.0\n        do iw = 1, 3\n          t = t + ix * iw + iz + iy\n        end do\n        as(ix, iz) = t * 0.5 + ix\n      end do\n    end do\n  end do\nend program",
    );
}
