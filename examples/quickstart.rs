//! Quickstart: transform the paper's Figure 2(a) kernel and watch the
//! pre-push pay off on a simulated Myrinet cluster.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use compuniformer::{transform, Options};
use depan::Context;
use interp::run_program;

fn main() {
    // The abstract target code of Figure 2(a): an inner computation loop
    // finalizes `as`, then a blocking alltoall ships it — zero overlap.
    let src = "\
program main
  real :: as(4096, 4), ar(4096, 4), acc(4096)
  do iy = 1, 4
    do ix = 1, 4096
      do iz = 1, 4
        t = 0.0
        do iw = 1, 3
          t = t + ix * iw + iz + iy
        end do
        as(ix, iz) = t * 0.5
      end do
    end do
    call mpi_alltoall(as, 4096, ar)
    do ix = 1, 4096
      acc(ix) = acc(ix) * 0.5 + ar(ix, 1) * 0.25
    end do
  end do
end program";

    let np = 4;
    let program = fir::parse_validated(src).expect("valid input");

    println!("=== original (overlap-naive) ===\n{src}\n");

    let opts = Options {
        context: Context::new().with("np", np as i64),
        ..Default::default()
    };
    let out = transform(&program, &opts).expect("transformable kernel");

    println!("=== transformation report ===\n{}", out.report.summary());
    println!("=== transformed (pre-pushing) ===\n{}", fir::unparse(&out.program));

    for model in [
        clustersim::NetworkModel::mpich(),
        clustersim::NetworkModel::mpich_gm(),
    ] {
        let base = run_program(&program, np, &model).expect("original runs");
        let pre = run_program(&out.program, np, &model).expect("transformed runs");

        // Identical outputs — the paper's §4 correctness check.
        for rank in 0..np {
            assert_eq!(
                base.outputs[rank], pre.outputs[rank],
                "outputs must match on rank {rank}"
            );
        }

        let t0 = base.report.makespan();
        let t1 = pre.report.makespan();
        println!(
            "{:>9}: original {:>12}  prepush {:>12}  speedup {:.2}x  \
             (exposed comm: {} -> {})",
            model.name,
            t0.to_string(),
            t1.to_string(),
            t0.as_ns() as f64 / t1.as_ns() as f64,
            base.report.max_exposed_comm(),
            pre.report.max_exposed_comm(),
        );
    }
    println!("\noutputs identical on all ranks under both models ✓");
}
