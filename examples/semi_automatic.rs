//! The semi-automatic workflow (paper §3.1, §3.4): what the tool refuses
//! to touch, what it asks the user, and what changes once the user
//! answers.
//!
//! ```text
//! cargo run --release --example semi_automatic
//! ```

use compuniformer::{transform, Options, TransformError, UserOracle};
use interp::run_program;
use workloads::{indirect3d::Indirect3d, negative, Workload};

fn main() {
    // Part 1: unsafe programs are declined with actionable reasons.
    println!("=== part 1: programs the tool must refuse ===\n");
    for case in negative::cases(4) {
        let program = fir::parse_validated(&case.source).expect("cases are valid");
        let opts = Options {
            tile_size: Some(4),
            context: depan::Context::new().with("np", 4),
            ..Default::default()
        };
        match transform(&program, &opts) {
            Ok(_) => unreachable!("negative case `{}` must not transform", case.name),
            Err(TransformError::NothingApplied(report)) => {
                println!("{:<28} -> declined", case.name);
                for o in &report.opportunities {
                    if let compuniformer::Status::Declined(reasons) = &o.status {
                        for r in reasons {
                            println!("{:<28}    reason: {r}", "");
                        }
                    }
                }
                for r in &report.rejections {
                    println!("{:<28}    rejected: {r}", "");
                }
            }
            Err(e) => println!("{:<28} -> {e}", case.name),
        }
    }

    // Part 2: the paper's Figure 3 with its mod/div re-indexing. Static
    // analysis cannot prove the copy loop order-preserving, so fully
    // automatic mode declines with a *question*; answering it (the user
    // inspected the code) unlocks the transformation — and the runtime
    // equivalence check validates the answer.
    println!("\n=== part 2: the Figure-3 kernel needs one user answer ===\n");
    let np = 4;
    let w = Indirect3d::small(np);
    let program = w.program();

    let automatic = Options {
        context: w.context(),
        oracle: UserOracle::Decline,
        ..Default::default()
    };
    let err = transform(&program, &automatic).expect_err("must decline");
    println!("automatic mode: {err}\n");

    let semi = Options {
        context: w.context(),
        oracle: UserOracle::AssumeSafe,
        ..Default::default()
    };
    let out = transform(&program, &semi).expect("user answered yes");
    for q in &out.report.queries {
        println!("asked: {} (answered yes)", q.question);
    }

    let model = clustersim::NetworkModel::mpich_gm();
    let base = run_program(&program, np, &model).expect("original");
    let pre = run_program(&out.program, np, &model).expect("transformed");
    let dead = out.report.incomparable_arrays();
    for rank in 0..np {
        for (name, dump) in &base.outputs[rank].arrays {
            if dead.contains(&name.as_str()) {
                continue;
            }
            assert_eq!(
                Some(dump),
                pre.outputs[rank].arrays.get(name),
                "rank {rank} array {name}"
            );
        }
    }
    println!(
        "\nuser's answer verified empirically: outputs identical on {np} ranks \
         (speedup on MPICH-GM: {:.2}x)",
        base.report.makespan().as_ns() as f64 / pre.report.makespan().as_ns() as f64
    );
}
