//! Finite-difference ADI sweeps (the paper's "Finite differences"
//! exemplar): each step computes a local relaxation, transposes with
//! `MPI_ALLTOALL`, and feeds the result into the next step — so the
//! correctness check spans multiple communication rounds. This example
//! additionally sweeps the tile size K around the heuristic's choice,
//! showing the U-shaped trade-off the paper describes in §2.
//!
//! ```text
//! cargo run --release --example stencil_adi
//! ```

use compuniformer::{transform, Options};
use interp::run_program;
use workloads::{adi::AdiStencil, Workload};

fn main() {
    let np = 8;
    let w = AdiStencil::standard(np);
    let program = w.program();
    let model = clustersim::NetworkModel::mpich_gm();

    let base = run_program(&program, np, &model).expect("original runs");
    let t0 = base.report.makespan();
    println!("ADI stencil, np = {np}, MPICH-GM model");
    println!("original (blocking alltoall): {t0}\n");
    println!("{:>6} {:>12} {:>8}   note", "K", "prepush", "gain");

    // Heuristic choice first.
    let heuristic = transform(
        &program,
        &Options {
            context: w.context(),
            ..Default::default()
        },
    )
    .expect("transforms");
    let k_star = heuristic.report.opportunities[0]
        .tile_size
        .expect("tile size chosen");

    for k in [4, 64, 512, k_star, 2048, 4096] {
        let out = transform(
            &program,
            &Options {
                tile_size: Some(k),
                context: w.context(),
                ..Default::default()
            },
        )
        .expect("transforms");
        let pre = run_program(&out.program, np, &model).expect("transformed runs");
        for rank in 0..np {
            assert_eq!(base.outputs[rank], pre.outputs[rank]);
        }
        let t1 = pre.report.makespan();
        println!(
            "{:>6} {:>12} {:>7.2}x   {}",
            k,
            t1.to_string(),
            t0.as_ns() as f64 / t1.as_ns() as f64,
            if k == k_star { "<- heuristic choice" } else { "" }
        );
    }

    println!(
        "\nSmall K drowns in per-message overhead; huge K leaves the last \
         tile's transfer exposed. The kselect heuristic lands near the \
         bottom of the U without profiling — the reason the paper argues \
         tile-size choice belongs in an automated system."
    );
}
