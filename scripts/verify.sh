#!/usr/bin/env sh
# Local verification gate: everything compiles (benches, examples, both
# binaries), the full test suite passes, the harness binary actually
# *executes* (quick sweep grid, seconds), the perf smoke confirms
# wall-clock instrumentation and the simulator-core micro-bench run, and
# clippy is clean at warnings-as-errors. Run from anywhere; operates on
# the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace --all-targets"
cargo build --release --workspace --all-targets

echo "==> cargo test -q"
cargo test -q

echo "==> harness quick (smoke-runs the binary; emits BENCH_sweep.json)"
# (Re)writes the quick-grid perf-trajectory artifact in the repo root;
# the bytes are deterministic, so a dirty BENCH_sweep.json after this
# step means the perf profile changed. To see how (from bash):
#   cargo run --release -p overlap-bench --bin harness -- diff \
#     <(git show HEAD:BENCH_sweep.json) BENCH_sweep.json
# (A full `harness sweep` also writes BENCH_sweep.json by default — pass
# --out, or let this step regenerate the quick baseline afterwards.)
# The one-shot regression gate against the committed baseline is:
#   cargo run --release -p overlap-bench --bin harness -- quick \
#     --out /tmp/q.json --baseline BENCH_sweep.json
cargo run --release -q -p overlap-bench --bin harness -- quick \
  --wall-out target/BENCH_sweep_wall.json
# One --wall-out timing artifact is committed per PR under perf/ — the
# ROADMAP's tracked perf trajectory. Refresh the current PR's file with:
#   cp target/BENCH_sweep_wall.json perf/PR<N>_quick_wall.json

echo "==> compile-cache smoke: quick grid twice, warm run must hit and match bytes"
# The second run exercises the in-process compilation cache (shared
# original programs across models guarantee hits even within one run) and
# must reproduce the cold artifact byte-for-byte — the "reuse without
# divergence" invariant of DESIGN.md §5.
warm_out=$(cargo run --release -q -p overlap-bench --bin harness -- quick \
  --out target/BENCH_quick_warm.json)
echo "$warm_out"
hits=$(echo "$warm_out" | sed -n 's/^compile cache: \([0-9][0-9]*\) hit(s).*/\1/p')
if [ -z "$hits" ] || [ "$hits" -eq 0 ]; then
  echo "compile-cache smoke FAILED: expected >0 compilation-cache hits, got [${hits:-none}]"
  exit 1
fi
cmp BENCH_sweep.json target/BENCH_quick_warm.json || {
  echo "compile-cache smoke FAILED: warm-cache artifact differs from the cold run"
  exit 1
}

echo "==> incremental smoke: --incremental vs the committed artifact reuses rows"
# With no input changes, every baseline row's input_hash matches, nothing
# re-simulates, and the merged artifact is byte-identical to the cold one.
incr_out=$(cargo run --release -q -p overlap-bench --bin harness -- quick \
  --incremental --baseline BENCH_sweep.json --out target/BENCH_quick_incr.json)
echo "$incr_out"
reused=$(echo "$incr_out" | sed -n 's/^incremental vs .*: reused \([0-9][0-9]*\) row(s).*/\1/p')
if [ -z "$reused" ] || [ "$reused" -eq 0 ]; then
  echo "incremental smoke FAILED: expected >0 reused rows against the committed artifact, got [${reused:-none}]"
  exit 1
fi
cmp BENCH_sweep.json target/BENCH_quick_incr.json || {
  echo "incremental smoke FAILED: incremental artifact differs from the committed baseline"
  exit 1
}

echo "==> harness analyze: registry x {orig,prepush} x models must verify clean"
# Static communication-safety verification + type inference over every
# program the pipeline ships or emits. Any diagnostic (unwaited isend,
# in-flight buffer touched, rank-divergent collective, ...) exits 1 here.
cargo run --release -q -p overlap-bench --bin harness -- analyze

echo "==> determinism lints: no wall-clock or unordered iteration in sim paths"
# The simulator's virtual times are byte-reproducible across hosts and
# runs. Two classes of bug quietly break that: reading the host clock
# inside simulation code, and iterating a HashMap (arbitrary order) where
# the order can reach scheduling or output. Keyed HashMap *lookups* are
# fine — files on the allowlist below are audited to only do lookups.
if grep -rn "std::time::Instant\|std::time::SystemTime" \
    crates/clustersim/src crates/interp/src; then
  echo "determinism lint FAILED: host clock read inside simulator/interpreter code"
  exit 1
fi
hashmap_hits=$(grep -rln "HashMap" crates/clustersim/src crates/interp/src \
  | grep -v -e '^crates/clustersim/src/state.rs$' -e '^crates/interp/src/lower.rs$' \
  || true)
if [ -n "$hashmap_hits" ]; then
  echo "determinism lint FAILED: HashMap outside the audited allowlist:"
  echo "$hashmap_hits"
  echo "(use BTreeMap/Vec, or audit the file for lookup-only use and extend the allowlist)"
  exit 1
fi
# Rank execution must never spawn OS threads outside the audited worker
# pool (clustersim/src/pool.rs): both engines — thread-per-rank and the
# resumable state machines — draw every thread from there, which is what
# keeps admission control and the byte-identity argument airtight. Test
# modules (from the first `#[cfg(test)]` down) spawn freely.
spawn_hits=$(find crates/clustersim/src crates/interp/src -name '*.rs' \
    ! -path 'crates/clustersim/src/pool.rs' -print0 \
  | xargs -0 awk '
      FNR == 1 { in_tests = 0 }
      /#\[cfg\(test\)\]/ { in_tests = 1 }
      !in_tests && (/thread::spawn/ || /\.spawn\(/) { print FILENAME ":" FNR ": " $0 }
    ')
if [ -n "$spawn_hits" ]; then
  echo "determinism lint FAILED: thread spawn outside the audited worker pool:"
  echo "$spawn_hits"
  echo "(route the work through clustersim::pool, or audit and extend the allowlist)"
  exit 1
fi

echo "==> scenario-file smoke: quick grid from scenarios/quick.toml"
# The declarative grid must drive the harness to the *byte-identical*
# artifact the compiled-in quick grid produces — the committed
# scenarios/*.toml files are the source of truth for what each preset
# sweeps, so any drift between file and code fails here.
cargo run --release -q -p overlap-bench --bin harness -- quick \
  --grid scenarios/quick.toml --out target/BENCH_quick_from_toml.json
cmp BENCH_sweep.json target/BENCH_quick_from_toml.json || {
  echo "scenario-file smoke FAILED: scenarios/quick.toml artifact differs from the compiled-in quick grid"
  exit 1
}

echo "==> perf smoke: wall-clock fields populated in the timing section"
# The non-normalized artifact must carry the v2 `timing` section with a
# real (nonzero) total — catching a broken stopwatch before it silently
# zeroes the tracked perf trajectory.
grep -q '"timing"' target/BENCH_sweep_wall.json
grep -q '"wall_ms_total"' target/BENCH_sweep_wall.json
if grep -q '"wall_ms_total": 0,' target/BENCH_sweep_wall.json; then
  echo "perf smoke FAILED: wall_ms_total is zero in the --wall-out artifact"
  exit 1
fi

echo "==> wall-clock trajectory: diff consecutive perf/ artifacts"
# The ROADMAP tracks one --wall-out artifact per PR under perf/. Diff the
# two most recent so per-scenario host wall-clock movements are *seen* in
# CI output (informational only — wall clock varies across machines, so
# this step never fails on a slowdown, only on missing/corrupt artifacts).
# "Most recent" = highest PR *number*: extract it and sort numerically,
# because lexicographic filename order breaks at PR 10 (PR10 < PR5).
latest_two_by_pr() {
  sed 's|.*/PR\([0-9][0-9]*\)_quick_wall\.json$|\1 &|' | sort -k 1 -n \
    | awk '{print $2}' | tail -2
}
# Self-check: the selection must survive the PR 10 rollover.
sel=$(printf 'perf/PR2_quick_wall.json\nperf/PR10_quick_wall.json\nperf/PR9_quick_wall.json\n' \
  | latest_two_by_pr | tr '\n' ' ')
if [ "$sel" != "perf/PR9_quick_wall.json perf/PR10_quick_wall.json " ]; then
  echo "perf-trajectory selection FAILED its self-check: picked [$sel]"
  exit 1
fi
latest_two=$(ls perf/PR*_quick_wall.json | latest_two_by_pr)
if [ "$(echo "$latest_two" | wc -l)" -eq 2 ]; then
  # shellcheck disable=SC2086
  cargo run --release -q -p overlap-bench --bin harness -- diff --wall $latest_two
else
  echo "(fewer than two perf/PR*_quick_wall.json artifacts; skipping)"
fi

echo "==> resumable-engine smoke: one np=256 row (scenarios/smoke256.toml)"
# Twice the largest historical rank count, driven by the fixed worker
# pool — seconds at small size. Completing with 0 errors is the gate for
# "np no longer bounded by how many OS threads the host tolerates".
cargo run --release -q -p overlap-bench --bin harness -- sweep \
  --grid scenarios/smoke256.toml --out target/BENCH_smoke256.json

echo "==> model-family smoke: congested + hetero columns (scenarios/smoke-models.toml)"
# One congested and one heterogeneous column at small size, run *twice*:
# the new model families must complete with 0 error rows and — like every
# other column — produce byte-identical artifacts across runs (their link
# and per-rank accounting is per-rank-deterministic, DESIGN.md §2).
cargo run --release -q -p overlap-bench --bin harness -- sweep \
  --grid scenarios/smoke-models.toml --out target/BENCH_smoke_models_a.json
cargo run --release -q -p overlap-bench --bin harness -- sweep \
  --grid scenarios/smoke-models.toml --out target/BENCH_smoke_models_b.json
cmp target/BENCH_smoke_models_a.json target/BENCH_smoke_models_b.json || {
  echo "model-family smoke FAILED: congested/hetero artifact not byte-identical across runs"
  exit 1
}

echo "==> sweep-service smoke: sweepd end-to-end + SIGTERM drain"
# Start the daemon on an ephemeral port, drive it with curl: submit the
# quick grid, poll to done, fetch the artifact, and cmp against the
# committed BENCH_sweep.json — the service invariant is that serving may
# change wall-clock, never a simulated byte. Then pin the worker with a
# multi-second job, SIGTERM mid-queue, and assert the drain: new
# submissions get 503 while the running job finishes, and the process
# exits 0.
./target/release/sweepd --addr 127.0.0.1:0 --queue 4 > target/sweepd.log 2>&1 &
sweepd_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's|^listening on http://||p' target/sweepd.log)
  [ -n "$addr" ] && break
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "sweep-service smoke FAILED: sweepd never reported its address"
  kill "$sweepd_pid" 2>/dev/null || true
  exit 1
fi
curl -sf -X POST "http://$addr/jobs" \
  -d '{"grid_file": "scenarios/quick.toml"}' > /dev/null
state=""
for _ in $(seq 1 600); do
  state=$(curl -sf "http://$addr/jobs/1" \
    | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')
  [ "$state" = "done" ] && break
  sleep 0.1
done
if [ "$state" != "done" ]; then
  echo "sweep-service smoke FAILED: job 1 ended in state [${state:-unknown}]"
  kill "$sweepd_pid" 2>/dev/null || true
  exit 1
fi
curl -sf "http://$addr/jobs/1/artifact" > target/BENCH_served.json
cmp BENCH_sweep.json target/BENCH_served.json || {
  echo "sweep-service smoke FAILED: served artifact differs from the committed BENCH_sweep.json"
  kill "$sweepd_pid" 2>/dev/null || true
  exit 1
}
curl -sf -X POST "http://$addr/jobs" \
  -d '{"grid_file": "scenarios/smoke256.toml"}' > /dev/null
kill -TERM "$sweepd_pid"
sleep 0.3
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$addr/jobs" \
  -d '{"grid_file": "scenarios/quick.toml"}')
if [ "$code" != "503" ]; then
  echo "sweep-service smoke FAILED: expected 503 during drain, got [$code]"
  kill "$sweepd_pid" 2>/dev/null || true
  exit 1
fi
wait "$sweepd_pid" || {
  echo "sweep-service smoke FAILED: sweepd exited nonzero after SIGTERM"
  exit 1
}
grep -q "drained; exiting" target/sweepd.log || {
  echo "sweep-service smoke FAILED: sweepd never printed the drain epitaph"
  exit 1
}

echo "==> perf smoke: simulator-core micro-bench (isend/recv + alltoall)"
cargo bench -p clustersim --bench core_comm

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: OK"
