#!/usr/bin/env sh
# Local verification gate: everything compiles (benches, examples, both
# binaries), the full test suite passes, the harness binary actually
# *executes* (quick sweep grid, seconds), and clippy is clean at
# warnings-as-errors. Run from anywhere; operates on the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace --all-targets"
cargo build --release --workspace --all-targets

echo "==> cargo test -q"
cargo test -q

echo "==> harness quick (smoke-runs the binary; emits BENCH_sweep.json)"
# (Re)writes the quick-grid perf-trajectory artifact in the repo root;
# the bytes are deterministic, so a dirty BENCH_sweep.json after this
# step means the perf profile changed. To see how (from bash):
#   cargo run --release -p overlap-bench --bin harness -- diff \
#     <(git show HEAD:BENCH_sweep.json) BENCH_sweep.json
# (A full `harness sweep` also writes BENCH_sweep.json by default — pass
# --out, or let this step regenerate the quick baseline afterwards.)
cargo run --release -q -p overlap-bench --bin harness -- quick

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: OK"
