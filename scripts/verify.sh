#!/usr/bin/env sh
# Local verification gate: everything compiles (benches, examples, both
# binaries), the full test suite passes, and clippy is clean at
# warnings-as-errors. Run from anywhere; operates on the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace --all-targets"
cargo build --release --workspace --all-targets

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: OK"
