//! # overlap-suite
//!
//! Reproduction of Fishgold, Danalis, Pollock & Swany,
//! *An Automated Approach to Improve Communication-Computation Overlap in
//! Clusters* (ParCo 2005, NIC Series Vol. 33, pp. 481-488).
//!
//! This facade crate re-exports the workspace members so examples and
//! downstream users can depend on a single crate:
//!
//! - [`fir`] — the mini-Fortran frontend (lexer, parser, AST, unparser): the
//!   stand-in for the paper's Nestor framework.
//! - [`depan`] — data-dependence and array-access analysis: the stand-in for
//!   Petit + the Omega test.
//! - [`clustersim`] — a deterministic virtual-time cluster simulator with
//!   LogGP-style network models (`mpich`, `mpich_gm`).
//! - [`interp`] — an interpreter that executes `fir` programs on the
//!   simulated cluster, validating correctness and measuring virtual time.
//! - [`compuniformer`] — the paper's contribution: the automated pre-push
//!   transformation.
//! - [`workloads`] — parameterized mini-Fortran programs used by the paper's
//!   evaluation and our extensions, enumerable by name via
//!   [`workloads::registry`].
//! - [`analyze`] — static analysis over emitted programs: slot-level type
//!   inference (feeding `interp`'s typed chain instructions) and
//!   rank-parametric communication-safety verification (every
//!   `mpi_isend`/`mpi_irecv` waited on all paths, no in-flight buffer
//!   touched, collectives rank-consistent).
//! - [`sweep`] — the declarative scenario-sweep engine: cartesian grids
//!   over (workload, np, model, K, variant), a work-stealing parallel
//!   executor, a job core (bounded queue, lifecycle states, progress
//!   events), and the `BENCH_sweep.json` artifact reader/writer.
//! - [`service`] — the sweep service: a dependency-free HTTP/1.1 front
//!   end (`sweepd`) over the job core, streaming progress events and
//!   serving byte-identical artifacts.
//!
//! ## Quickstart
//!
//! ```
//! use overlap_suite::prelude::*;
//! use workloads::Workload as _;
//!
//! // A direct-pattern kernel in the shape of the paper's Figure 2(a).
//! let w = workloads::direct::Direct1d::small(4);
//! let program = w.program();
//!
//! // Run the Compuniformer pipeline with tile size K = 8.
//! let opts = compuniformer::Options {
//!     tile_size: Some(8),
//!     context: w.context(), // supplies np and problem sizes to the analyses
//!     ..Default::default()
//! };
//! let out = compuniformer::transform(&program, &opts).expect("transforms");
//!
//! // Execute original and transformed on a 4-rank simulated Myrinet cluster.
//! let model = clustersim::model::NetworkModel::mpich_gm();
//! let base = interp::run_program(&program, 4, &model).unwrap();
//! let pre = interp::run_program(&out.program, 4, &model).unwrap();
//! assert_eq!(base.outputs, pre.outputs); // identical results (paper §4)
//! ```

pub use analyzer as analyze;
pub use clustersim;
pub use compuniformer;
pub use depan;
pub use driver as sweep;
pub use fir;
pub use interp;
pub use service;
pub use workloads;

/// Convenient glob-import surface for examples and tests.
pub mod prelude {
    pub use crate::{
        analyze, clustersim, compuniformer, depan, fir, interp, service, sweep, workloads,
    };
}
