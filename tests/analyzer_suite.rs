//! The static analyzer's external contract:
//!
//! 1. the hand-broken negative corpus is rejected with its *pinned*
//!    diagnostic codes (golden — the codes are part of the tool's
//!    interface, scripts grep for them);
//! 2. every program the pipeline emits — registry × rank counts ×
//!    original/pre-push — verifies clean;
//! 3. the typed-chain specialization is invisible: virtual times,
//!    per-rank stats, and outputs are byte-identical with it on or off.

use overlap_suite::analyze::{verify_comm, CommCheckConfig};
use overlap_suite::sweep::{analyze_registry, ModelSpec};
use proptest::prelude::*;
use workloads::SizeClass;

#[test]
fn negative_corpus_is_rejected_with_pinned_codes() {
    for np in [2usize, 4, 8] {
        for case in workloads::negative::analyzer_cases(np) {
            let program = fir::parse_validated(&case.source).unwrap_or_else(|e| {
                panic!("case `{}` must parse: {}", case.name, e.render(&case.source))
            });
            let report = verify_comm(&program, &CommCheckConfig::new(np as i64));
            assert!(
                !report.is_clean(),
                "case `{}` (np={np}) must be rejected",
                case.name
            );
            let codes: Vec<&str> = report
                .diagnostics
                .iter()
                .map(|d| d.code.as_str())
                .collect();
            assert!(
                codes.iter().all(|c| *c == case.expect_code),
                "case `{}` (np={np}) must pin {}, got {:?}:\n{}",
                case.name,
                case.expect_code,
                codes,
                report.render_human(&case.source)
            );
        }
    }
}

#[test]
fn negative_corpus_diagnostics_name_the_offending_line() {
    // Rendering must point into the *case's own source* — a span of 0..0
    // (or one past the end) would mean the analyzer lost provenance.
    for case in workloads::negative::analyzer_cases(4) {
        let program = fir::parse_validated(&case.source).unwrap();
        let report = verify_comm(&program, &CommCheckConfig::new(4));
        for d in &report.diagnostics {
            assert!(
                d.span.end > d.span.start && d.span.end as usize <= case.source.len(),
                "case `{}`: diagnostic span {:?} does not point into the source",
                case.name,
                d.span
            );
        }
        let rendered = report.render_human(&case.source);
        assert!(
            rendered.contains(case.expect_code),
            "case `{}`: rendering must show the code:\n{rendered}",
            case.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    /// Every program the pipeline emits is analyzer-clean: all registry
    /// workloads, original and pre-push, under every preset model, across
    /// sampled rank counts.
    #[test]
    fn emitted_programs_are_analyzer_clean(np in prop::sample::select(vec![2usize, 4, 8])) {
        for row in analyze_registry(SizeClass::Small, np, &ModelSpec::presets()) {
            prop_assert!(
                row.is_clean(),
                "{} has diagnostics:\n{}",
                row.label(),
                row.report.render_human(&row.source)
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    /// Typed chains are a pure dispatch optimization: turning them off
    /// changes nothing observable — same outputs, same per-rank virtual
    /// times, same stats — on original and pre-push programs alike.
    #[test]
    fn typed_chains_are_byte_identical(
        idx in 0usize..8,
        np in prop::sample::select(vec![2usize, 4]),
        prepush in any::<bool>(),
    ) {
        let entry = &workloads::registry()[idx];
        let w = (entry.make)(SizeClass::Small, np);
        let model = clustersim::NetworkModel::mpich_gm();
        let program = if prepush {
            overlap_suite::sweep::transform_workload(w.as_ref(), &model, None).program
        } else {
            w.program()
        };

        let on = interp::Options {
            typed_chains: true,
            ..Default::default()
        };
        let off = interp::Options {
            typed_chains: false,
            ..on.clone()
        };

        let a = interp::run_program_opts(&program, np, &model, &on).unwrap();
        let b = interp::run_program_opts(&program, np, &model, &off).unwrap();
        prop_assert_eq!(&a.outputs, &b.outputs, "{} outputs differ", entry.name);
        prop_assert_eq!(
            &a.report.per_rank, &b.report.per_rank,
            "{} virtual-time stats differ", entry.name
        );
    }
}
