//! Golden pin for the CLI sweep renderer.
//!
//! PR 10 moved the `harness sweep`/`quick` table out of the binary into
//! `driver::client::render_sweep_stdout` so the CLI and any future
//! front end share one renderer. This test freezes its output over the
//! committed `BENCH_sweep.json`: the refactor promised byte-for-byte
//! identical stdout, and this keeps it that way.
//!
//! Regenerate after an *intentional* format change with:
//!
//! ```sh
//! BLESS=1 cargo test -q --test cli_render_golden
//! ```

use overlap_suite::sweep::client::render_sweep_stdout;
use overlap_suite::sweep::json;

const GOLDEN_PATH: &str = "tests/golden/sweep_stdout.txt";

#[test]
fn sweep_stdout_rendering_is_pinned() {
    let artifact = std::fs::read_to_string("BENCH_sweep.json").expect("committed artifact");
    let result = json::from_json_string(&artifact).expect("artifact parses");
    let rendered = render_sweep_stdout(&result);

    if std::env::var_os("BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden");
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden file (run with BLESS=1)");
    assert_eq!(
        rendered, golden,
        "CLI sweep rendering drifted from {GOLDEN_PATH}; \
         if intentional, regenerate with BLESS=1"
    );
}
