//! The scaled simulator core, end to end: an np=64 stress scenario runs
//! to completion with bounded live threads, rank-pool capacity never
//! changes any virtual time (re-pinning PR 2's thread-invariance at pool
//! sizes {1, 2, 8}), and the full-grid preset actually carries the large
//! rank counts.

use overlap_suite::clustersim::pool;
use overlap_suite::sweep::{
    run_specs, summarize, ModelSpec, ScenarioSpec, SizeClass, SweepGrid, SweepRecord,
    SweepResult, Variant,
};
use std::sync::{Mutex, OnceLock};

/// Tests here mutate the global rank-pool capacity; serialize them.
fn pool_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn spec(workload: &str, np: usize, model: ModelSpec) -> ScenarioSpec {
    ScenarioSpec {
        workload: workload.into(),
        size: SizeClass::Small,
        np,
        model,
        tile_size: None,
        variant: Variant::Compare,
    }
}

/// np=64 stress: a whole compare scenario (transform, two 64-rank
/// simulated runs, equivalence gate) completes on the pooled core, and
/// the thread high-water stays bounded by the documented envelope —
/// max(2 x cores, largest admitted scenario) plus the sweep workers.
#[test]
fn np64_scenario_completes_with_bounded_threads() {
    let _guard = pool_lock();
    let recs = run_specs(&[spec("direct2d", 64, ModelSpec::MpichGm)], 1);
    assert_eq!(recs.len(), 1);
    let r = &recs[0];
    assert!(r.is_ok(), "np=64 scenario failed: {}", r.error().unwrap_or(""));
    assert!(r.orig_ns.is_some() && r.prepush_ns.is_some());
    assert!(r.speedup.unwrap() > 0.0);

    let stats = pool::stats();
    let envelope = pool::capacity().max(64) + 8;
    assert!(
        stats.workers_high_water <= envelope,
        "live-thread high-water {} exceeds the documented bound {envelope}",
        stats.workers_high_water
    );
    assert_eq!(stats.tickets_outstanding, 0, "all rank tickets released");
}

/// Rank-pool capacity changes scheduling only: the same grid produces
/// byte-identical normalized artifacts at pool sizes 1, 2, and 8.
#[test]
fn results_invariant_across_pool_sizes() {
    let _guard = pool_lock();
    let grid = SweepGrid::new()
        .workloads(["direct2d", "indirect", "direct"])
        .size(SizeClass::Small)
        .nps([2, 4])
        .models([ModelSpec::MpichGm, ModelSpec::Mpich]);
    let specs = grid.expand();
    assert_eq!(specs.len(), 12);

    let strip_wall = |mut records: Vec<SweepRecord>| {
        for r in &mut records {
            r.wall_ms = 0.0;
        }
        records
    };

    let default_capacity = pool::capacity();
    let runs: Vec<Vec<SweepRecord>> = [1usize, 2, 8]
        .iter()
        .map(|&cap| {
            pool::set_capacity(cap);
            strip_wall(run_specs(&specs, 2))
        })
        .collect();
    pool::set_capacity(default_capacity);

    for (i, other) in runs.iter().enumerate().skip(1) {
        assert_eq!(
            &runs[0], other,
            "pool size {} changed results vs pool size 1",
            [1usize, 2, 8][i]
        );
    }
    let artifacts: Vec<String> = runs
        .into_iter()
        .map(|records| {
            let summary = summarize(&records, 0.0);
            overlap_suite::sweep::json::to_json_string(&SweepResult {
                records,
                summary,
                timing: None,
            })
        })
        .collect();
    assert!(
        artifacts.windows(2).all(|w| w[0] == w[1]),
        "artifact bytes differ across pool sizes"
    );
}

/// The full-grid preset carries the np {16, 32, 64} rows for the
/// all-peers families and keeps the rest of the registry at np {4, 8}.
#[test]
fn full_grid_includes_large_rank_counts() {
    let specs = SweepGrid::full().expand();
    // np {16, 32} for every registry workload; np = 64 for the all-peers
    // families; one np = 128 scaling row.
    for np in [16usize, 32] {
        for entry in workloads::registry() {
            assert!(
                specs.iter().any(|s| s.np == np && s.workload == entry.name),
                "full grid lost the {}/np={np} row",
                entry.name
            );
        }
    }
    for w in SweepGrid::HIGH_NP_WORKLOADS {
        assert!(
            specs.iter().any(|s| s.np == 64 && s.workload == w),
            "full grid lost the {w}/np=64 row"
        );
    }
    assert!(
        !specs.iter().any(|s| s.np > 32
            && !SweepGrid::HIGH_NP_WORKLOADS.contains(&s.workload.as_str())),
        "only the all-peers families extend past np=32"
    );
    for np in [128usize, 256, 512] {
        let big: Vec<_> = specs.iter().filter(|s| s.np == np).collect();
        assert_eq!(big.len(), 1, "exactly one np={np} scaling row");
        assert_eq!(big[0].workload, "direct2d");
    }
    // 8 workloads x np {4,8} x 6 models (rdma-ideal plus the two
    //   congestion levels and the hetero profile, all capped at np=8)
    // + 8 workloads x np {16,32} x the 2 paper stacks
    // + 3 all-peers workloads x np=64 x the 2 paper stacks
    // + the direct2d/MPICH-GM scaling rows at np {128, 256, 512}
    // + the U-curve tile axis: 3 all-peers workloads x 3 explicit sizes.
    assert_eq!(specs.len(), 8 * 2 * 6 + 8 * 2 * 2 + 3 * 2 + 3 + 3 * 3);
}
