//! Differential test over the whole pipeline, driven through the sweep
//! engine (`overlap_suite::sweep`), for **every** workload in the
//! registry at two rank counts:
//!
//! 1. **Equality (§4, exhaustive):** the transformed program's outputs
//!    are element-wise identical to the original under
//!    `interp::run_program`, for every preset `NetworkModel` — checked
//!    both explicitly here and by the engine's internal equivalence gate.
//! 2. **No-slowdown:** `prepush <= orig` virtual time at `Medium` size on
//!    the RDMA-capable stack wherever the registry guarantees overlap
//!    (`min_overlap_np`). The guarantee is *scoped* deliberately: at toy
//!    sizes, or with a single partner (np = 2 all-peers), or on the
//!    high-β MPICH stack at sub-Figure-1 sizes, per-message overhead can
//!    beat the overlap win — e.g. `direct` (owner-sends) measures 0.37x
//!    at standard/np=8/MPICH if forced. The K-selection predictor
//!    declines every such site (the program ships unchanged), so since
//!    PR 5 no registry workload knowingly regresses anywhere — the last
//!    open class, `interchange-blocked`'s §3.5 per-column fallback, now
//!    routes through the predictor too ([`interchange_blocked_never_regresses`]).
//!    The full standard-size grid on both stacks is `harness sweep`.

use interp::run_program;
use overlap_suite::sweep::{
    run_sweep, transform_workload, FilterSpec, ModelSpec, SizeClass, SweepGrid,
};

const TEST_NPS: [usize; 2] = [2, 4];

fn preset_models() -> Vec<ModelSpec> {
    ModelSpec::presets()
}

/// Case 1a, explicit: transform every registry workload and compare
/// outputs element-for-element per rank under every preset model.
#[test]
fn every_registry_workload_is_output_identical_under_every_model() {
    for entry in workloads::registry() {
        for np in TEST_NPS {
            let w = (entry.make)(SizeClass::Small, np);
            let program = w.program();
            for model_spec in preset_models() {
                let model = model_spec.to_model();
                // The K heuristic is model-informed, so transform per model.
                let out = transform_workload(w.as_ref(), &model, None);
                let base = run_program(&program, np, &model).unwrap_or_else(|e| {
                    panic!("{} np={np} {}: original failed: {e}", entry.name, model.name)
                });
                let pre = run_program(&out.program, np, &model).unwrap_or_else(|e| {
                    panic!("{} np={np} {}: transformed failed: {e}", entry.name, model.name)
                });
                let excluded = out.report.incomparable_arrays();
                for rank in 0..np {
                    for array in w.output_arrays() {
                        if excluded.contains(&array.as_str()) {
                            continue;
                        }
                        assert_eq!(
                            base.outputs[rank].arrays.get(&array),
                            pre.outputs[rank].arrays.get(&array),
                            "{} np={np} {}: rank {rank} array `{array}` differs",
                            entry.name,
                            model.name
                        );
                    }
                }
            }
        }
    }
}

/// Case 1b, via the engine: the same exhaustive grid as a sweep — every
/// record must come back ok (the engine asserts equivalence per scenario
/// and would turn a mismatch into an error row).
#[test]
fn exhaustive_small_grid_sweeps_clean() {
    let grid = SweepGrid::new()
        .workloads(workloads::registry().iter().map(|e| e.name))
        .size(SizeClass::Small)
        .nps(TEST_NPS)
        .models(preset_models());
    let result = run_sweep(&grid, 0);
    assert_eq!(
        result.records.len(),
        workloads::registry().len() * TEST_NPS.len() * preset_models().len()
    );
    for r in &result.records {
        assert!(
            r.is_ok(),
            "{} failed: {}",
            r.spec.key(),
            r.error().unwrap_or("")
        );
        assert!(r.orig_ns.is_some() && r.prepush_ns.is_some());
    }
    assert_eq!(result.summary.errors, 0);
}

/// Case 2: wherever overlap is guaranteed, pre-push must not be slower —
/// virtual time is exact, so this is a strict `<=`, no tolerance. The
/// registry guarantee is a first-class declarative filter
/// ([`FilterSpec::OverlapGuaranteed`]), usable from scenario files too.
#[test]
fn prepush_never_slower_where_overlap_is_guaranteed() {
    let grid = SweepGrid::new()
        .workloads(workloads::registry().iter().map(|e| e.name))
        .size(SizeClass::Medium)
        .nps(TEST_NPS)
        .models([ModelSpec::MpichGm])
        .filter(FilterSpec::OverlapGuaranteed);
    let expected: usize = workloads::registry()
        .iter()
        .filter_map(|e| e.min_overlap_np)
        .map(|min_np| TEST_NPS.iter().filter(|&&np| np >= min_np).count())
        .sum();
    let result = run_sweep(&grid, 0);
    assert_eq!(result.records.len(), expected, "filter scoped the grid");
    assert!(expected >= 10, "the guarantee must cover most of the registry");
    for r in &result.records {
        assert!(r.is_ok(), "{}: {}", r.spec.key(), r.error().unwrap_or(""));
        let (orig, prepush) = (r.orig_ns.unwrap(), r.prepush_ns.unwrap());
        assert!(
            prepush <= orig,
            "{}: prepush {prepush} ns SLOWER than orig {orig} ns",
            r.spec.key()
        );
    }
}

/// The PR-5 predictor routing, end to end: `interchange-blocked` (the
/// §3.5 per-column fallback) must never come back slower at any size, on
/// any preset stack, at np {2, 4, 8}. Before the fix the fallback
/// bypassed K-selection entirely and shipped measured 0.21x–0.98x
/// slowdowns in 26 of these 27 cells; now every losing site is declined
/// (the original program runs, 1.00x) while the single measured win —
/// standard scale, np = 8, zero-copy stack, 1.01x — is still applied.
#[test]
fn interchange_blocked_never_regresses() {
    for size in [SizeClass::Small, SizeClass::Medium, SizeClass::Standard] {
        let grid = SweepGrid::new()
            .workloads(["interchange-blocked"])
            .size(size)
            .nps([2, 4, 8])
            .models(preset_models());
        let result = run_sweep(&grid, 0);
        assert_eq!(result.records.len(), 9);
        for r in &result.records {
            assert!(r.is_ok(), "{}: {}", r.spec.key(), r.error().unwrap_or(""));
            let (orig, prepush) = (r.orig_ns.unwrap(), r.prepush_ns.unwrap());
            assert!(
                prepush <= orig,
                "{}: prepush {prepush} ns SLOWER than orig {orig} ns",
                r.spec.key()
            );
        }
        // The win half of the calibration: the per-column fallback still
        // fires where it measurably pays (1.01x) instead of being
        // declined outright.
        if size == SizeClass::Standard {
            let r = result
                .records
                .iter()
                .find(|r| r.spec.np == 8 && r.spec.model == ModelSpec::RdmaIdeal)
                .expect("standard grid has the np=8 rdma-ideal cell");
            assert!(
                r.strategy.as_deref() == Some("per-column owner sends"),
                "the zero-copy standard/np=8 cell must keep the fallback: {:?}",
                r.strategy
            );
            assert!(
                r.prepush_ns.unwrap() < r.orig_ns.unwrap(),
                "standard/np=8 on rdma-ideal must keep its measured win ({} vs {})",
                r.prepush_ns.unwrap(),
                r.orig_ns.unwrap()
            );
        }
    }
}

/// The PR-4 predictor calibration, end to end: `direct` (owner-sends) on
/// the zero-copy `rdma-ideal` stack must never come back slower at any
/// size — the predictor declines the few-sender cases that used to ship
/// measured 0.73x–0.95x slowdowns, and still accepts the np = 8
/// standard-size win it used to wrongly decline.
#[test]
fn rdma_ideal_owner_cases_never_regress() {
    for size in [SizeClass::Small, SizeClass::Medium, SizeClass::Standard] {
        let grid = SweepGrid::new()
            .workloads(["direct"])
            .size(size)
            .nps([2, 4, 8])
            .models([ModelSpec::RdmaIdeal]);
        let result = run_sweep(&grid, 0);
        for r in &result.records {
            assert!(r.is_ok(), "{}: {}", r.spec.key(), r.error().unwrap_or(""));
            let (orig, prepush) = (r.orig_ns.unwrap(), r.prepush_ns.unwrap());
            assert!(
                prepush <= orig,
                "{}: prepush {prepush} ns SLOWER than orig {orig} ns",
                r.spec.key()
            );
        }
        // The win half of the calibration: standard/np=8 still transforms
        // (1.04x measured) instead of being declined outright.
        if size == SizeClass::Standard {
            let r = result
                .records
                .iter()
                .find(|r| r.spec.np == 8)
                .expect("standard grid has the np=8 row");
            assert!(
                r.prepush_ns.unwrap() < r.orig_ns.unwrap(),
                "standard/np=8 on rdma-ideal must keep its measured overlap win ({} vs {})",
                r.prepush_ns.unwrap(),
                r.orig_ns.unwrap()
            );
        }
    }
}
