//! Pin for the library-silence invariant: `driver` (the sweep engine,
//! job core, and measurement code) is embeddable — it must never write
//! to stdout or stderr. All progress goes through the event sink; only
//! the CLI front end in `driver::client` and the binaries print.
//!
//! The test re-executes itself as a child process with output captured.
//! The child branch drives the engine through every entry point a host
//! might embed (plain sweep, incremental sweep, job core with events);
//! the parent asserts the child produced no bytes beyond the libtest
//! harness's own frame.

use std::process::Command;

const CHILD_ENV: &str = "OVERLAP_EMBED_CAPTURE_CHILD";

fn child_runs_the_engine_silently() {
    use overlap_suite::sweep::{
        run_sweep, run_sweep_incremental, JobCore, JobSpec, JobState, ModelSpec, SizeClass,
        SweepGrid,
    };
    use std::time::Duration;

    let grid = SweepGrid::new()
        .workloads(["direct2d"])
        .size(SizeClass::Small)
        .nps([2])
        .models([ModelSpec::MpichGm]);

    // Plain sweep and incremental rerun.
    let result = run_sweep(&grid, 1);
    assert_eq!(result.summary.errors, 0);
    let rerun = run_sweep_incremental(&grid, 1, &result);
    assert_eq!(rerun.result.normalized(), result.normalized());

    // The job core: queue, worker thread, event stream, artifact.
    let core = JobCore::new(2);
    let id = core
        .submit(JobSpec::grid(grid).threads(1))
        .expect("submit fits an empty queue");
    let state = core
        .wait_terminal(id, Duration::from_secs(600))
        .expect("job reaches a terminal state");
    assert_eq!(state, JobState::Done);
    assert!(core.artifact(id).is_some());
    core.shutdown();
    core.join();
}

#[test]
fn sweep_engine_writes_nothing_to_stdout_or_stderr() {
    if std::env::var_os(CHILD_ENV).is_some() {
        child_runs_the_engine_silently();
        return;
    }

    let exe = std::env::current_exe().expect("own test binary path");
    let out = Command::new(exe)
        .args([
            "sweep_engine_writes_nothing_to_stdout_or_stderr",
            "--exact",
            "-q",
        ])
        .env(CHILD_ENV, "1")
        .output()
        .expect("re-exec test binary");

    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "child failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stderr.is_empty(),
        "library code wrote to stderr:\n{stderr}"
    );
    // stdout may only contain the libtest frame itself — any sweep
    // progress leaking from the engine shows up as an extra line here.
    for line in stdout.lines() {
        let line = line.trim();
        let harness_frame = line.is_empty()
            || line == "running 1 test"
            || line == "."
            || line.starts_with("test result:");
        assert!(
            harness_frame,
            "library code wrote to stdout: {line:?}\nfull stdout:\n{stdout}"
        );
    }
}
