//! The paper's §4 correctness evaluation, mechanized: for every workload,
//! the transformed program must compile (validate), execute, and produce
//! output **identical** to the original — and on the RDMA-capable model it
//! must not be slower.

use compuniformer::{transform, Options, UserOracle};
use interp::run_program;
use overlap_suite::prelude::*;
use workloads::Workload;

fn check_workload(w: &dyn Workload, np: usize, oracle: UserOracle, tile: Option<i64>) {
    let program = w.program();
    let opts = Options {
        tile_size: tile,
        context: w.context(),
        oracle,
        // This suite verifies that *transformed* programs are equivalent,
        // so always transform — profitability is the sweep tests' concern.
        apply_even_if_unprofitable: true,
        ..Default::default()
    };
    let out = transform(&program, &opts)
        .unwrap_or_else(|e| panic!("{} failed to transform: {e}", w.name()));
    assert!(
        out.report.applied_count() >= 1,
        "{}: nothing applied",
        w.name()
    );

    let text = fir::unparse(&out.program);
    assert!(
        !text.contains("mpi_alltoall"),
        "{}: alltoall survived:\n{text}",
        w.name()
    );
    assert!(
        text.contains("mpi_isend") && text.contains("mpi_irecv"),
        "{}: no async comm generated:\n{text}",
        w.name()
    );
    // The transformed text must itself parse and validate (source-to-source).
    let reparsed = fir::parse_validated(&text)
        .unwrap_or_else(|e| panic!("{}: output does not reparse: {e}\n{text}", w.name()));

    let model = clustersim::NetworkModel::mpich_gm();
    let base = run_program(&program, np, &model)
        .unwrap_or_else(|e| panic!("{}: original failed: {e}", w.name()));
    let pre = run_program(&out.program, np, &model)
        .unwrap_or_else(|e| panic!("{}: transformed failed: {e}", w.name()));
    // And the unparse/reparse roundtrip runs identically.
    let pre2 = run_program(&reparsed, np, &model)
        .unwrap_or_else(|e| panic!("{}: reparsed failed: {e}", w.name()));

    let dead: Vec<&str> = out.report.incomparable_arrays();
    for rank in 0..np {
        for name in w.output_arrays() {
            if dead.contains(&name.as_str()) {
                continue;
            }
            let a = base.outputs[rank].arrays.get(&name).unwrap_or_else(|| {
                panic!("{}: original lacks array `{name}`", w.name())
            });
            let b = pre.outputs[rank].arrays.get(&name).unwrap_or_else(|| {
                panic!("{}: transformed lacks array `{name}`", w.name())
            });
            assert_eq!(
                a, b,
                "{}: rank {rank} array `{name}` differs",
                w.name()
            );
            let c = pre2.outputs[rank].arrays.get(&name).unwrap();
            assert_eq!(b, c, "{}: reparsed run differs on `{name}`", w.name());
        }
    }

    // Performance claims live in tests/timing_shape.rs with realistically
    // sized workloads; tiny test sizes are legitimately overhead-dominated.
}

#[test]
fn direct_1d_equivalent_np4() {
    check_workload(
        &workloads::direct::Direct1d::small(4),
        4,
        UserOracle::Decline,
        Some(8),
    );
}

#[test]
fn direct_1d_equivalent_np8_uneven_tile() {
    // K = 16 divides sz = 16; trips do not straddle partitions.
    let w = workloads::direct::Direct1d {
        np: 8,
        sz: 16,
        outer: 2,
        work: 4,
    };
    check_workload(&w, 8, UserOracle::Decline, Some(16));
}

#[test]
fn direct_1d_heuristic_k() {
    check_workload(
        &workloads::direct::Direct1d::small(4),
        4,
        UserOracle::Decline,
        None,
    );
}

#[test]
fn direct_2d_equivalent_np4() {
    check_workload(
        &workloads::direct2d::Direct2d::small(4),
        4,
        UserOracle::Decline,
        Some(8),
    );
}

#[test]
fn direct_2d_equivalent_np2_leftover_tile() {
    // nloc = 24 with K = 7: tiles 7+7+7+3 — exercises the min() epilogue.
    check_workload(
        &workloads::direct2d::Direct2d::small(2),
        2,
        UserOracle::Decline,
        Some(7),
    );
}

#[test]
fn direct_2d_tile_of_one() {
    check_workload(
        &workloads::direct2d::Direct2d::small(3),
        3,
        UserOracle::Decline,
        Some(1),
    );
}

#[test]
fn indirect_2d_equivalent_fully_automatic() {
    // Provable order preservation: no oracle needed.
    check_workload(
        &workloads::indirect::Indirect2d::small(4),
        4,
        UserOracle::Decline,
        None,
    );
}

#[test]
fn indirect_3d_requires_oracle() {
    let w = workloads::indirect3d::Indirect3d::small(4);
    let program = w.program();
    // Fully automatic mode declines (cannot prove order preservation)…
    let opts = Options {
        context: w.context(),
        oracle: UserOracle::Decline,
        ..Default::default()
    };
    let err = transform(&program, &opts).unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("order"), "unexpected: {msg}");
    // …and the semi-automatic mode transforms correctly.
    check_workload(&w, 4, UserOracle::AssumeSafe, None);
}

#[test]
fn fft_transpose_equivalent() {
    check_workload(
        &workloads::fft::FftTranspose::small(4),
        4,
        UserOracle::Decline,
        Some(4),
    );
}

#[test]
fn adi_stencil_equivalent() {
    check_workload(
        &workloads::adi::AdiStencil::small(4),
        4,
        UserOracle::Decline,
        Some(5),
    );
}

#[test]
fn equivalence_holds_on_tcp_model_too() {
    // Correctness is model-independent; run one workload under MPICH.
    let w = workloads::direct2d::Direct2d::small(4);
    let program = w.program();
    let opts = Options {
        tile_size: Some(6),
        context: w.context(),
        ..Default::default()
    };
    let out = transform(&program, &opts).unwrap();
    let model = clustersim::NetworkModel::mpich();
    let base = run_program(&program, 4, &model).unwrap();
    let pre = run_program(&out.program, 4, &model).unwrap();
    for rank in 0..4 {
        assert_eq!(base.outputs[rank], pre.outputs[rank]);
    }
}

#[test]
fn transformed_program_is_buffer_reuse_clean() {
    // Run the transformed direct-2d workload with the strict MPI hazard
    // detector: the generated code must never overwrite in-flight buffers.
    let w = workloads::direct2d::Direct2d::small(4);
    let program = w.program();
    let opts = Options {
        tile_size: Some(4),
        context: w.context(),
        ..Default::default()
    };
    let out = transform(&program, &opts).unwrap();
    let strict = interp::Options::strict();
    interp::run_program_opts(
        &out.program,
        4,
        &clustersim::NetworkModel::mpich_gm(),
        &strict,
    )
    .expect("no buffer-reuse hazards in generated code");
}

#[test]
fn indirect_transform_is_buffer_reuse_clean() {
    let w = workloads::indirect::Indirect2d::small(4);
    let program = w.program();
    let opts = Options {
        context: w.context(),
        ..Default::default()
    };
    let out = transform(&program, &opts).unwrap();
    let strict = interp::Options::strict();
    interp::run_program_opts(
        &out.program,
        4,
        &clustersim::NetworkModel::mpich_gm(),
        &strict,
    )
    .expect("indirect expansion must prevent buffer reuse");
}

#[test]
fn every_negative_case_is_refused() {
    for case in workloads::negative::cases(4) {
        let program = fir::parse_validated(&case.source).unwrap();
        let opts = Options {
            tile_size: Some(4),
            context: depan::Context::new().with("np", 4),
            ..Default::default()
        };
        match transform(&program, &opts) {
            Err(e) => {
                let msg = format!("{e}");
                // Rejections at the opportunity stage land in the report's
                // rejection list instead of decline reasons; accept either.
                let matched = msg.contains(case.expect_reason)
                    || matches!(
                        &e,
                        compuniformer::TransformError::NothingApplied(r)
                            if r.rejections.iter().any(|x| x.contains(case.expect_reason))
                    );
                assert!(
                    matched,
                    "negative case `{}`: reasons do not mention {:?}:\n{msg}",
                    case.name, case.expect_reason
                );
            }
            Ok(_) => panic!(
                "negative case `{}` was transformed — unsound!",
                case.name
            ),
        }
    }
}
