//! Facade smoke test: `overlap_suite::prelude` must expose every crate and
//! type the `src/lib.rs` quickstart doc example uses, so the doc example,
//! `examples/quickstart.rs`, and downstream users can rely on a single
//! `use overlap_suite::prelude::*;` import.

use overlap_suite::prelude::*;
use workloads::Workload as _;

/// Exercise the exact surface the doc example in `src/lib.rs` touches:
/// `workloads::direct::Direct1d`, `compuniformer::{Options, transform}`,
/// `clustersim::model::NetworkModel`, and `interp::run_program`.
#[test]
fn prelude_exposes_the_doc_example_surface() {
    let w = workloads::direct::Direct1d::small(4);
    let program = w.program();

    let opts = compuniformer::Options {
        tile_size: Some(8),
        context: w.context(),
        ..Default::default()
    };
    let out = compuniformer::transform(&program, &opts).expect("doc example kernel transforms");

    let model = clustersim::model::NetworkModel::mpich_gm();
    let base = interp::run_program(&program, 4, &model).expect("original runs");
    let pre = interp::run_program(&out.program, 4, &model).expect("transformed runs");
    assert_eq!(base.outputs, pre.outputs, "doc example equivalence claim");
}

/// The prelude and the facade's top-level re-exports name the same crates,
/// and `fir` + `depan` (used by examples) are reachable through both.
#[test]
fn prelude_and_reexports_agree() {
    // Each line fails to compile if the re-export disappears.
    let _: fn(&str) -> Result<fir::Program, fir::Errors> = overlap_suite::fir::parse_validated;
    let _ = overlap_suite::depan::Context::new();
    let _ = depan::Context::new().with("np", 4);
    let _ = clustersim::NetworkModel::mpich();
    let program = fir::parse("program m\n  x = 1\nend program").expect("parses");
    assert_eq!(fir::unparse(&program), overlap_suite::fir::unparse(&program));
}
