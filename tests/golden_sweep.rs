//! Golden test for the `BENCH_sweep.json` schema: run the committed
//! quick grid and compare the normalized artifact byte-for-byte against
//! `tests/golden/BENCH_sweep_quick.json`. A mismatch means either the
//! schema drifted (bump `overlap-sweep/v1` and regenerate deliberately)
//! or the simulator/transformation stopped being deterministic — both
//! deserve a loud, readable failure.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! cargo run --release -p overlap-bench --bin harness -- quick
//! cp BENCH_sweep.json tests/golden/BENCH_sweep_quick.json
//! ```

use overlap_suite::sweep::{json, run_sweep, SweepGrid};

const GOLDEN: &str = include_str!("golden/BENCH_sweep_quick.json");

/// Render the first divergence with context, so the failure reads like a
/// diff instead of two multi-KB blobs.
fn first_divergence(expected: &str, actual: &str) -> String {
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    let n = exp.len().max(act.len());
    for i in 0..n {
        let e = exp.get(i).copied();
        let a = act.get(i).copied();
        if e != a {
            let lo = i.saturating_sub(2);
            let mut out = format!("first divergence at line {}:\n", i + 1);
            for j in lo..i {
                out.push_str(&format!("   {}\n", exp.get(j).copied().unwrap_or("")));
            }
            out.push_str(&format!("-  {}\n", e.unwrap_or("<end of golden file>")));
            out.push_str(&format!("+  {}\n", a.unwrap_or("<end of actual output>")));
            return out;
        }
    }
    "contents equal".into()
}

#[test]
fn quick_grid_artifact_matches_the_committed_golden_file() {
    let result = run_sweep(&SweepGrid::quick(), 2);
    assert_eq!(result.summary.errors, 0, "quick grid must sweep clean");
    let actual = json::to_json_string(&result.normalized());
    if actual != GOLDEN {
        panic!(
            "BENCH_sweep.json drifted from tests/golden/BENCH_sweep_quick.json\n\n{}\n\
             if the change is intentional, regenerate with:\n  \
             cargo run --release -p overlap-bench --bin harness -- quick\n  \
             cp BENCH_sweep.json tests/golden/BENCH_sweep_quick.json",
            first_divergence(GOLDEN, &actual)
        );
    }
}

/// The committed golden file itself must parse under the current reader
/// and carry the current schema tag — guarding reader/writer skew.
#[test]
fn golden_file_parses_and_reserializes_identically() {
    let parsed = json::from_json_string(GOLDEN)
        .unwrap_or_else(|e| panic!("golden file no longer parses: {e}"));
    assert!(GOLDEN.contains(&format!("\"schema\": \"{}\"", json::SCHEMA)));
    assert_eq!(
        json::to_json_string(&parsed),
        GOLDEN,
        "golden file is not in canonical writer form"
    );
}
