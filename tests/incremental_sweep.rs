//! Differential suite for the cross-scenario reuse system: the compile
//! cache and `--incremental` row reuse must be pure wall-clock
//! optimizations — every artifact they produce is byte-identical to what
//! a cold, full, single-threaded run writes. These tests pin that
//! equivalence (DESIGN.md §5), plus the invalidation rules: moved cells
//! re-simulate, registry-fingerprint changes invalidate everything, and
//! error rows are never reused.

use overlap_suite::sweep::{
    cache, json, run_sweep, run_sweep_incremental, ModelSpec, SizeClass, SweepGrid,
};
use overlap_suite::workloads;

fn two_workload_grid(models: Vec<ModelSpec>) -> SweepGrid {
    SweepGrid::new()
        .workloads(["direct2d", "indirect"])
        .size(SizeClass::Small)
        .nps([2, 4])
        .models(models)
}

/// (a) Warm-cache sweeps produce the cold artifact's bytes at every
/// thread count. The first run in this process is the cold one; every
/// later run — same or different thread count — hits the process-global
/// compile cache and must not move a byte.
#[test]
fn warm_cache_artifact_bytes_match_cold_across_thread_counts() {
    let grid = SweepGrid::quick();
    let cold = json::to_json_string(&run_sweep(&grid, 1).normalized());
    for threads in [1usize, 2, 8] {
        for pass in 0..2 {
            let warm = json::to_json_string(&run_sweep(&grid, threads).normalized());
            assert_eq!(
                warm, cold,
                "threads={threads} pass={pass} diverged from the cold artifact"
            );
        }
    }
}

/// (b) Extending one axis re-simulates exactly the new cells: an
/// incremental run over the widened grid reuses every baseline cell and
/// simulates only the added model column — and the merged artifact is
/// byte-for-byte what a cold run of the widened grid writes.
#[test]
fn incremental_resimulates_exactly_the_moved_cells_and_matches_cold_bytes() {
    let narrow = two_workload_grid(vec![ModelSpec::MpichGm]);
    let wide = two_workload_grid(vec![ModelSpec::MpichGm, ModelSpec::Mpich]);

    let cold_wide = run_sweep(&wide, 2);
    let baseline = run_sweep(&narrow, 2);
    let inc = run_sweep_incremental(&wide, 2, &baseline);

    let specs = wide.expand();
    assert_eq!(inc.reused.len(), specs.len());
    for (i, spec) in specs.iter().enumerate() {
        assert_eq!(
            inc.reused[i],
            spec.model == ModelSpec::MpichGm,
            "only the pre-existing model column may be reused: {}",
            spec.key()
        );
    }
    assert_eq!(
        json::to_json_string(&inc.result.normalized()),
        json::to_json_string(&cold_wide.normalized()),
        "incremental result must normalize to the cold widened-grid bytes"
    );

    // A "predictor tweak" shape: one baseline row's hash no longer
    // matches. Exactly that cell re-simulates; bytes still match cold.
    let mut touched = cold_wide.clone();
    let victim = touched.records[1].spec.key();
    touched.records[1].input_hash = touched.records[1].input_hash.map(|h| h ^ 1);
    let inc = run_sweep_incremental(&wide, 2, &touched);
    for (i, spec) in specs.iter().enumerate() {
        assert_eq!(
            inc.reused[i],
            spec.key() != victim,
            "only the touched cell may re-simulate: {}",
            spec.key()
        );
    }
    assert_eq!(
        json::to_json_string(&inc.result.normalized()),
        json::to_json_string(&cold_wide.normalized())
    );
}

/// (c) A registry-fingerprint change invalidates all rows: hashes
/// computed under a different workload-code fingerprint never match, so
/// the incremental run re-simulates the entire grid (and still lands on
/// the cold bytes, since the actual generators did not change).
#[test]
fn registry_fingerprint_change_invalidates_every_row() {
    let grid = SweepGrid::quick();
    let cold = run_sweep(&grid, 2);

    let mut foreign = cold.clone();
    for r in &mut foreign.records {
        let entry = workloads::find(&r.spec.workload).expect("quick grid workloads exist");
        let w = (entry.make)(r.spec.size, r.spec.np);
        r.input_hash = Some(cache::scenario_input_hash_with(
            &r.spec,
            &*w,
            workloads::registry_fingerprint() ^ 0x5eed,
        ));
    }
    let inc = run_sweep_incremental(&grid, 2, &foreign);
    assert!(
        inc.reused.iter().all(|r| !*r),
        "a fingerprint change must re-simulate everything"
    );
    assert_eq!(inc.result.timing.as_ref().unwrap().reused_rows, 0);
    assert_eq!(
        json::to_json_string(&inc.result.normalized()),
        json::to_json_string(&cold.normalized())
    );
}

/// The harness path: the baseline arrives *parsed from artifact text*,
/// not from a live run. Reused rows therefore carry re-parsed floats —
/// which must re-serialize to the identical bytes (shortest-roundtrip
/// Display), or file-level incremental reuse would corrupt artifacts.
#[test]
fn incremental_against_a_parsed_artifact_reproduces_the_bytes() {
    let grid = SweepGrid::quick();
    let text = json::to_json_string(&run_sweep(&grid, 2).normalized());
    let baseline = json::from_json_string(&text).expect("own artifact parses");
    let inc = run_sweep_incremental(&grid, 2, &baseline);
    assert!(inc.reused.iter().all(|r| *r), "nothing moved → all reused");
    assert_eq!(json::to_json_string(&inc.result.normalized()), text);
}
