//! Golden test for the `--md-out` markdown diff report: a fixed pair of
//! artifacts exercising every report section (regression, improvement,
//! status flips both ways, membership changes, two model columns) must
//! render byte-identically to `tests/golden/diff_report.md`.
//!
//! To regenerate after an intentional format change, run this test and
//! copy the printed actual output into the golden file (the failure
//! message includes it in full).

use overlap_suite::sweep::{
    diff, summarize, ModelSpec, RunStatus, ScenarioSpec, SizeClass, SweepRecord, SweepResult,
    Variant,
};

const GOLDEN: &str = include_str!("golden/diff_report.md");

fn rec(workload: &str, model: ModelSpec, prepush_ns: u64) -> SweepRecord {
    SweepRecord {
        spec: ScenarioSpec {
            workload: workload.into(),
            size: SizeClass::Standard,
            np: 8,
            model,
            tile_size: None,
            variant: Variant::Compare,
        },
        status: RunStatus::Ok,
        tile_size: Some(512),
        strategy: Some("fig4-all-peers".into()),
        orig_ns: Some(2000),
        prepush_ns: Some(prepush_ns),
        orig_exposed_ns: Some(400),
        prepush_exposed_ns: Some(100),
        speedup: Some(2000.0 / prepush_ns as f64),
        input_hash: None,
        wall_ms: 0.0,
    }
}

fn errored(workload: &str, model: ModelSpec, message: &str) -> SweepRecord {
    SweepRecord {
        status: RunStatus::Error(message.into()),
        tile_size: None,
        strategy: None,
        orig_ns: None,
        prepush_ns: None,
        orig_exposed_ns: None,
        prepush_exposed_ns: None,
        speedup: None,
        ..rec(workload, model, 1)
    }
}

fn result(records: Vec<SweepRecord>) -> SweepResult {
    let summary = summarize(&records, 0.0);
    SweepResult {
        records,
        summary,
        timing: None,
    }
}

/// The fixture pair: every section of the report is non-empty.
fn fixture() -> (SweepResult, SweepResult) {
    let baseline = result(vec![
        rec("fft", ModelSpec::Mpich, 1000),
        rec("adi", ModelSpec::Mpich, 1000),
        rec("direct2d", ModelSpec::MpichGm, 1000),
        rec("indirect", ModelSpec::MpichGm, 1000),
        rec("direct", ModelSpec::Mpich, 1000),
        errored("indirect3d", ModelSpec::MpichGm, "baseline died"),
    ]);
    let candidate = result(vec![
        rec("fft", ModelSpec::Mpich, 1200),     // regression
        rec("adi", ModelSpec::Mpich, 900),      // improvement
        rec("direct2d", ModelSpec::MpichGm, 1000), // unchanged
        errored("indirect", ModelSpec::MpichGm, "simulator panicked: tile 7"), // broke
        // `direct` missing here,
        rec("indirect3d", ModelSpec::MpichGm, 800), // fixed
        rec("interchange-legal", ModelSpec::MpichGm, 500), // new
    ]);
    (baseline, candidate)
}

#[test]
fn markdown_report_matches_the_committed_golden_file() {
    let (a, b) = fixture();
    let report = diff(&a, &b, 0.0);
    let actual = report.render_markdown("baseline.json", "candidate.json", 0.0);
    assert_eq!(
        actual, GOLDEN,
        "markdown diff report drifted from tests/golden/diff_report.md;\n\
         if intentional, replace the golden file with:\n\n{actual}"
    );
}

/// The golden document itself keeps the shape downstream tooling relies
/// on: a top-level title, the verdict line, and the three tables.
#[test]
fn golden_report_has_the_documented_shape() {
    assert!(GOLDEN.starts_with("# Sweep diff report"));
    assert!(GOLDEN.contains("**Verdict: REGRESSIONS**"));
    assert!(GOLDEN.contains("| unchanged | regressions |"));
    assert!(GOLDEN.contains("## Status flips"));
    assert!(GOLDEN.contains("## Membership"));
    assert!(GOLDEN.contains("## Virtual-time movements"));
    assert!(GOLDEN.contains("## Per-model geomean speedup"));
}
