//! Property tests for the [`ModelSpec`] string forms: the `id()` of any
//! valid spec — every family, parameters included — must parse back to
//! exactly the same spec. This is what keeps scenario files, JSON
//! artifacts, and diff keys lossless across all model families: `f64`
//! `Display` is shortest-representation, so even sweep-generated factors
//! like `0.125` or `1e-9` survive the round trip bit for bit.

use clustersim::HeteroProfile;
use overlap_suite::sweep::ModelSpec;
use proptest::prelude::*;

/// Every family, with generated parameters. Beta and load factors mix a
/// dyadic grid (the values sweeps actually use) with awkward decimals
/// and extreme-but-finite magnitudes.
fn any_model_spec() -> BoxedStrategy<ModelSpec> {
    let factor = prop_oneof![
        (0u32..=64).prop_map(|n| n as f64 / 8.0),
        prop::sample::select(vec![0.1, 0.3333333333333333, 1e-9, 12345.6789, 1e12]),
    ];
    let load = factor.clone().prop_map(|f| if f > 0.0 { f } else { 0.5 });
    prop_oneof![
        Just(ModelSpec::Mpich),
        Just(ModelSpec::MpichGm),
        Just(ModelSpec::RdmaIdeal),
        factor.prop_map(ModelSpec::MpichBeta),
        (1u32..=16, load).prop_map(|(links, load)| ModelSpec::Congested { links, load }),
        prop::sample::select(HeteroProfile::ALL.to_vec()).prop_map(ModelSpec::Hetero),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 256,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    /// parse(id(spec)) == spec for every family.
    #[test]
    fn model_spec_ids_roundtrip(spec in any_model_spec()) {
        let id = spec.id();
        let back = ModelSpec::parse(&id)
            .unwrap_or_else(|e| panic!("id `{id}` failed to parse: {e}"));
        prop_assert_eq!(back, spec, "id `{}` did not round-trip", id);
    }

    /// The materialized model's display name embeds the family parameters
    /// wherever the family has any, so distinct specs never alias in
    /// reports (the beta-sweep name bug, generalized to every family).
    #[test]
    fn parameterized_specs_have_distinct_display_names(
        a in any_model_spec(),
        b in any_model_spec(),
    ) {
        if a != b {
            prop_assert_ne!(
                a.to_model().name,
                b.to_model().name,
                "specs {} and {} alias one display name", a.id(), b.id()
            );
        }
    }
}
