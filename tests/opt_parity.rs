//! Differential pinning of the `interp::opt` pass (PR 5): the optimized
//! interpreter — constant folding, loop unrolling, loop-invariant
//! hoisting, block-summarized cost accounting, chain compilation — must
//! be *unobservable* next to the plain slot-indexed walk. For every
//! registry workload (original AND transformed program), and for a
//! proptest-sampled space of rank counts, network models, cost scales,
//! and option flags, virtual times, full per-rank stats, array payloads,
//! and prints must be byte-identical.

use clustersim::NetworkModel;
use interp::{run_program_opts, CostModel, Options, RunResult};
use overlap_suite::sweep::{transform_workload, ModelSpec, SizeClass};
use proptest::prelude::*;

fn run(program: &fir::Program, np: usize, model: &NetworkModel, opts: &Options) -> RunResult {
    run_program_opts(program, np, model, opts).unwrap_or_else(|e| panic!("run failed: {e}"))
}

/// Everything the simulation produced, compared field-for-field.
fn assert_identical(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a.outputs, b.outputs, "{what}: outputs differ");
    assert_eq!(
        a.report.per_rank, b.report.per_rank,
        "{what}: per-rank stats differ"
    );
}

/// Exhaustive: every registry workload, original and transformed, under
/// every preset model at two rank counts — optimized and unoptimized
/// runs are indistinguishable.
#[test]
fn every_registry_workload_is_opt_invariant() {
    let base = Options {
        optimize: false,
        ..Default::default()
    };
    let tuned = Options::default();
    assert!(tuned.optimize, "the opt pass is on by default");
    for entry in workloads::registry() {
        for np in [2usize, 4] {
            let w = (entry.make)(SizeClass::Small, np);
            let original = w.program();
            for model_spec in ModelSpec::presets() {
                let model = model_spec.to_model();
                let transformed = transform_workload(w.as_ref(), &model, None).program;
                for (kind, program) in [("original", &original), ("prepush", &transformed)] {
                    let what =
                        format!("{} np={np} {} {kind}", entry.name, model.name);
                    let plain = run(program, np, &model, &base);
                    let fast = run(program, np, &model, &tuned);
                    assert_identical(&plain, &fast, &what);
                }
            }
        }
    }
}

/// The gated modes keep parity too: buffer-reuse detection (array stores
/// excluded from blocks) and tracing (no blocks at all) still run the
/// folder/hoister, and traces must come out event-for-event identical.
#[test]
fn strict_and_traced_modes_stay_identical() {
    let model = NetworkModel::mpich_gm();
    for entry in workloads::registry() {
        let w = (entry.make)(SizeClass::Small, 2);
        let program = w.program();
        for (reuse, trace) in [(true, false), (false, true), (true, true)] {
            let mk = |optimize| Options {
                optimize,
                detect_buffer_reuse: reuse,
                trace,
                ..Default::default()
            };
            let what = format!("{} reuse={reuse} trace={trace}", entry.name);
            let plain = run(&program, 2, &model, &mk(false));
            let fast = run(&program, 2, &model, &mk(true));
            assert_identical(&plain, &fast, &what);
            if trace {
                let (pt, ft) = (plain.trace.unwrap(), fast.trace.unwrap());
                assert_eq!(pt.events, ft.events, "{what}: traces differ");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sampled: workload × np × model × a *non-integral* cost scale (the
    /// per-statement rounding is where naive charge summation would
    /// drift) × option flags.
    #[test]
    fn optimized_interpreter_is_unobservable(
        widx in 0usize..8,
        np in 2usize..5,
        model_idx in 0usize..3,
        scale_num in 1u32..40,
        transformed in any::<bool>(),
        reuse in any::<bool>(),
    ) {
        let registry = workloads::registry();
        let entry = &registry[widx % registry.len()];
        let w = (entry.make)(SizeClass::Small, np);
        let model = ModelSpec::presets()[model_idx].to_model();
        let program = if transformed {
            transform_workload(w.as_ref(), &model, None).program
        } else {
            w.program()
        };
        // E.g. scale 7 → ns_per_op 0.7: charges round per statement.
        let cost = CostModel::default().scaled(scale_num as f64 / 10.0);
        let mk = |optimize| Options {
            optimize,
            detect_buffer_reuse: reuse,
            cost: cost.clone(),
            ..Default::default()
        };
        let plain = run(&program, np, &model, &mk(false));
        let fast = run(&program, np, &model, &mk(true));
        let what = format!(
            "{} np={np} {} scale={} transformed={transformed} reuse={reuse}",
            entry.name, model.name, scale_num
        );
        assert_identical(&plain, &fast, &what);
    }
}
