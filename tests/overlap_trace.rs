//! Structural overlap evidence from the event trace: the transformed
//! program must *interleave* computation with posted sends (the whole
//! point of pre-pushing), while the original bunches all communication
//! after all computation of each phase.

use clustersim::EventKind;
use compuniformer::{transform, Options};
use depan::Context;
use interp::run_program_opts;
use workloads::Workload;

fn traced_run(
    program: &fir::Program,
    np: usize,
) -> interp::RunResult {
    let opts = interp::Options {
        trace: true,
        ..Default::default()
    };
    run_program_opts(program, np, &clustersim::NetworkModel::mpich_gm(), &opts)
        .expect("runs")
}

#[test]
fn prepush_interleaves_sends_with_compute() {
    let np = 4;
    let w = workloads::direct2d::Direct2d::small(np);
    let program = w.program();
    let out = transform(
        &program,
        &Options {
            tile_size: Some(6),
            context: w.context(),
            ..Default::default()
        },
    )
    .unwrap();

    let pre = traced_run(&out.program, np);
    let trace = pre.trace.expect("trace enabled");

    // For rank 0: find the first SendPosted and the last Compute event.
    // Pre-pushing means substantial computation happens AFTER the first
    // send was posted.
    let rank0: Vec<_> = trace.for_rank(0).collect();
    let first_send_idx = rank0
        .iter()
        .position(|e| matches!(e.kind, EventKind::SendPosted { .. }))
        .expect("prepush posts sends");
    let compute_after_send: u64 = rank0[first_send_idx..]
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Compute { ns } => Some(ns),
            _ => None,
        })
        .sum();
    let compute_total: u64 = rank0
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Compute { ns } => Some(ns),
            _ => None,
        })
        .sum();
    assert!(
        compute_after_send * 2 > compute_total,
        "less than half the computation ({compute_after_send} of {compute_total} ns) \
         happens after the first send — no overlap structure"
    );
}

#[test]
fn original_bunches_communication_after_compute() {
    let np = 4;
    let w = workloads::direct2d::Direct2d::small(np);
    let base = traced_run(&w.program(), np);
    let trace = base.trace.expect("trace enabled");
    // The original uses only collective alltoalls — no point-to-point at all.
    assert_eq!(
        trace.count(|e| matches!(e.kind, EventKind::SendPosted { .. })),
        0
    );
    assert_eq!(
        trace.count(|e| matches!(e.kind, EventKind::Alltoall { .. })),
        (np * w.outer) // one per rank per outer iteration
    );
}

#[test]
fn prepush_message_counts_match_tiling() {
    // nloc=24, K=6 → 4 tiles; per tile NP-1 sends per rank; outer=2.
    let np = 4;
    let w = workloads::direct2d::Direct2d::small(np); // nloc 24, outer 2
    let program = w.program();
    let out = transform(
        &program,
        &Options {
            tile_size: Some(6),
            context: w.context(),
            ..Default::default()
        },
    )
    .unwrap();
    let pre = traced_run(&out.program, np);
    let trace = pre.trace.expect("trace enabled");
    let sends_rank0 = trace.count(|e| {
        e.rank == 0 && matches!(e.kind, EventKind::SendPosted { .. })
    });
    let tiles = 24 / 6;
    assert_eq!(sends_rank0, tiles * (np - 1) * w.outer);
}

#[test]
fn two_alltoalls_both_transformed() {
    // A double-transpose step: two independent exchange phases per
    // iteration, each with its own finalizing loop — both opportunities
    // must be found and transformed, and outputs must stay identical.
    let np = 4;
    let src = "\
program main
  real :: as(32, 4), ar(32, 4)
  real :: bs(32, 4), br(32, 4)
  do it = 1, 2
    do ix = 1, 32
      do iz = 1, 4
        as(ix, iz) = ix * iz + it
      end do
    end do
    call mpi_alltoall(as, 32, ar)
    do ix = 1, 32
      do iz = 1, 4
        bs(ix, iz) = ar(ix, iz) * 0.5 + ix
      end do
    end do
    call mpi_alltoall(bs, 32, br)
  end do
end program";
    let program = fir::parse_validated(src).unwrap();
    let out = transform(
        &program,
        &Options {
            tile_size: Some(8),
            context: Context::new().with("np", np as i64),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(out.report.applied_count(), 2, "{}", out.report.summary());
    let text = fir::unparse(&out.program);
    assert!(!text.contains("mpi_alltoall"), "{text}");

    let model = clustersim::NetworkModel::mpich_gm();
    let base = interp::run_program(&program, np, &model).unwrap();
    let pre = interp::run_program(&out.program, np, &model).unwrap();
    for rank in 0..np {
        assert_eq!(base.outputs[rank], pre.outputs[rank], "rank {rank}");
    }
}

#[test]
fn second_phase_reading_first_result_is_safe() {
    // The second phase's finalizing loop READS ar (the first phase's
    // receive array). After transformation the first phase completes at
    // its waitall, so the read still sees complete data — outputs prove it.
    let np = 2;
    let src = "\
program main
  real :: as(16, 2), ar(16, 2), acc(16)
  do it = 1, 3
    do ix = 1, 16
      do iz = 1, 2
        as(ix, iz) = ix + iz * it
      end do
    end do
    call mpi_alltoall(as, 16, ar)
    do ix = 1, 16
      acc(ix) = acc(ix) + ar(ix, 1) + ar(ix, 2)
    end do
  end do
end program";
    let program = fir::parse_validated(src).unwrap();
    let out = transform(
        &program,
        &Options {
            tile_size: Some(4),
            context: Context::new().with("np", np as i64),
            ..Default::default()
        },
    )
    .unwrap();
    let model = clustersim::NetworkModel::mpich();
    let base = interp::run_program(&program, np, &model).unwrap();
    let pre = interp::run_program(&out.program, np, &model).unwrap();
    assert_eq!(base.outputs, pre.outputs);
}
