//! Property test: for *randomized* direct-pattern kernels (random shapes,
//! subscript directions, RHS expressions, tile sizes, rank counts), the
//! transformed program always produces bit-identical outputs to the
//! original on every rank. This is the paper's §4 correctness check run
//! across a whole family of programs instead of one test code.

use compuniformer::{transform, Options};
use depan::Context;
use interp::run_program;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Kernel {
    np: usize,
    sz: usize,
    outer: usize,
    rank2: bool,
    reversed: bool,
    read_helper: bool,
    a: i64,
    b: i64,
    c: i64,
    k: i64,
}

impl Kernel {
    fn source(&self) -> String {
        let Kernel {
            np,
            sz,
            outer,
            rank2,
            reversed,
            read_helper,
            a,
            b,
            c,
            ..
        } = *self;
        let helper = if read_helper { " + c0(ix) * 0.5" } else { "" };
        if rank2 {
            let sub = if reversed {
                format!("{sz} + 1 - ix")
            } else {
                "ix".to_string()
            };
            format!(
                "\
program main
  real :: as({sz}, {np}), ar({sz}, {np}), c0({sz})
  do i = 1, {sz}
    c0(i) = i * 0.25
  end do
  do iy = 1, {outer}
    do ix = 1, {sz}
      do iz = 1, {np}
        as({sub}, iz) = ix * {a} + iy * {b} + iz + {c}{helper}
      end do
    end do
    call mpi_alltoall(as, {sz}, ar)
  end do
end program
"
            )
        } else {
            let n = np * sz;
            let sub = if reversed {
                format!("{n} + 1 - ix")
            } else {
                "ix".to_string()
            };
            format!(
                "\
program main
  real :: as({n}), ar({n}), c0({n})
  do i = 1, {n}
    c0(i) = i * 0.25
  end do
  do iy = 1, {outer}
    do ix = 1, {n}
      as({sub}) = ix * {a} + iy * {b} + {c}{helper}
    end do
    call mpi_alltoall(as, {sz}, ar)
  end do
end program
"
            )
        }
    }
}

fn kernel() -> impl Strategy<Value = Kernel> {
    (
        prop::sample::select(vec![2usize, 3, 4]),
        4usize..13,
        1usize..4,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        -3i64..4,
        -3i64..4,
        -5i64..6,
        1i64..14,
    )
        .prop_map(
            |(np, sz, outer, rank2, reversed, read_helper, a, b, c, kseed)| Kernel {
                np,
                sz,
                outer,
                rank2,
                reversed,
                read_helper,
                a,
                b,
                c,
                k: kseed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
        ..ProptestConfig::default()
    })]

    #[test]
    fn random_direct_kernels_transform_equivalently(kern in kernel()) {
        let src = kern.source();
        let program = fir::parse_validated(&src)
            .unwrap_or_else(|e| panic!("generator bug: {e}\n{src}"));

        // Tile size: for the 1-D owner strategy K must divide sz; pick the
        // largest divisor of sz that is <= the seed.
        let k = if kern.rank2 {
            kern.k.min(kern.sz as i64)
        } else {
            let mut k = 1;
            for d in 1..=kern.sz as i64 {
                if kern.sz as i64 % d == 0 && d <= kern.k {
                    k = d;
                }
            }
            k
        };

        let opts = Options {
            tile_size: Some(k),
            context: Context::new().with("np", kern.np as i64),
            ..Default::default()
        };
        let out = transform(&program, &opts)
            .unwrap_or_else(|e| panic!("decline on safe kernel: {e}\n{src}"));

        let model = clustersim::NetworkModel::mpich_gm();
        let base = run_program(&program, kern.np, &model)
            .unwrap_or_else(|e| panic!("original failed: {e}\n{src}"));
        let pre = run_program(&out.program, kern.np, &model)
            .unwrap_or_else(|e| {
                panic!("transformed failed: {e}\n{}", fir::unparse(&out.program))
            });

        for rank in 0..kern.np {
            prop_assert_eq!(
                &base.outputs[rank],
                &pre.outputs[rank],
                "rank {} differs\nsource:\n{}\ntransformed:\n{}",
                rank,
                src,
                fir::unparse(&out.program)
            );
        }
    }
}
