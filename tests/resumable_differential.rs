//! Differential pinning of the resumable rank engine (PR 7): executing
//! ranks as suspendable state machines on a bounded worker pool
//! ([`interp` with `Options::resumable`]) must be *unobservable* next to
//! the thread-per-rank engine it replaces. For every registry workload
//! (original AND transformed program) under every preset network model,
//! virtual times, full per-rank stats, array payloads, prints, and
//! event traces must be byte-identical — and so must runs under any
//! worker count, since the workers are a host-side throughput knob
//! only (DESIGN.md §3).

use clustersim::NetworkModel;
use interp::{run_program_opts, Options, RunResult};
use overlap_suite::sweep::{transform_workload, ModelSpec, SizeClass};

fn run(program: &fir::Program, np: usize, model: &NetworkModel, opts: &Options) -> RunResult {
    run_program_opts(program, np, model, opts).unwrap_or_else(|e| panic!("run failed: {e}"))
}

/// Everything the simulation produced, compared field-for-field.
fn assert_identical(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a.outputs, b.outputs, "{what}: outputs differ");
    assert_eq!(
        a.report.per_rank, b.report.per_rank,
        "{what}: per-rank stats differ"
    );
}

/// Exhaustive: every registry workload, original and transformed, under
/// every preset model at two rank counts — the resumable and
/// thread-per-rank engines are indistinguishable.
#[test]
fn every_registry_workload_is_engine_invariant() {
    let threaded = Options {
        resumable: false,
        ..Default::default()
    };
    let resumable = Options::default();
    assert!(resumable.resumable, "the resumable engine is on by default");
    for entry in workloads::registry() {
        for np in [2usize, 4] {
            let w = (entry.make)(SizeClass::Small, np);
            let original = w.program();
            for model_spec in ModelSpec::presets() {
                let model = model_spec.to_model();
                let transformed = transform_workload(w.as_ref(), &model, None).program;
                for (kind, program) in [("original", &original), ("prepush", &transformed)] {
                    let what = format!("{} np={np} {} {kind}", entry.name, model.name);
                    let a = run(program, np, &model, &threaded);
                    let b = run(program, np, &model, &resumable);
                    assert_identical(&a, &b, &what);
                }
            }
        }
    }
}

/// Tracing observes every virtual-time event the simulator emits; the
/// engines must agree event for event, which pins not just the final
/// stats but the entire interleaving-insensitive history. Strict
/// buffer-reuse detection rides along (it adds in-flight window checks
/// on the delegated non-blocking paths).
#[test]
fn traces_are_engine_invariant_event_for_event() {
    let model = NetworkModel::mpich_gm();
    for entry in workloads::registry() {
        let w = (entry.make)(SizeClass::Small, 4);
        let program = w.program();
        let mk = |resumable| Options {
            resumable,
            trace: true,
            detect_buffer_reuse: true,
            ..Default::default()
        };
        let a = run(&program, 4, &model, &mk(false));
        let b = run(&program, 4, &model, &mk(true));
        assert_identical(&a, &b, entry.name);
        let (ta, tb) = (a.trace.unwrap(), b.trace.unwrap());
        assert_eq!(ta.events, tb.events, "{}: traces differ", entry.name);
    }
}

/// The pluggable non-uniform model families ride the exact same shared
/// accounting functions as the uniform stacks (`book_send_nic`,
/// `serialize_at_receiver`, `compute_collective` — one implementation
/// under both engines), so congestion and heterogeneity must be just as
/// engine- and worker-count-invariant: for every registry workload,
/// original and transformed, under two contention levels and both
/// hetero profiles, the thread-per-rank baseline and the resumable
/// engine at worker counts {1, 3} agree on every output and stat.
#[test]
fn congested_and_hetero_models_are_engine_and_worker_invariant() {
    let threaded = Options {
        resumable: false,
        ..Default::default()
    };
    let models = [
        ModelSpec::Congested { links: 1, load: 2.0 },
        ModelSpec::Congested { links: 2, load: 3.0 },
        ModelSpec::Hetero(clustersim::HeteroProfile::HalfSlow),
        ModelSpec::Hetero(clustersim::HeteroProfile::Straggler),
    ];
    let np = 4usize;
    for entry in workloads::registry() {
        let w = (entry.make)(SizeClass::Small, np);
        let original = w.program();
        for spec in &models {
            let model = spec.to_model();
            let transformed = transform_workload(w.as_ref(), &model, None).program;
            for (kind, program) in [("original", &original), ("prepush", &transformed)] {
                let what = format!("{} np={np} {} {kind}", entry.name, model.name);
                let baseline = run(program, np, &model, &threaded);
                for workers in [1usize, 3] {
                    let opts = Options {
                        rank_workers: Some(workers),
                        ..Default::default()
                    };
                    let got = run(program, np, &model, &opts);
                    assert_identical(&baseline, &got, &format!("{what} workers={workers}"));
                }
            }
        }
    }
}

/// The worker count is pure host-side throughput: at np = 128 — ranks
/// far outnumbering any worker set, so parked frames are constantly
/// migrating between workers — worker counts {1, 2, 8} and the
/// thread-per-rank engine all produce byte-identical results.
#[test]
fn worker_count_is_unobservable_at_np_128() {
    let np = 128usize;
    let model = NetworkModel::mpich_gm();
    let w = workloads::find("direct2d").unwrap();
    let program = ((w.make)(SizeClass::Small, np)).program();
    let baseline = run(
        &program,
        np,
        &model,
        &Options {
            resumable: false,
            ..Default::default()
        },
    );
    for workers in [1usize, 2, 8] {
        let opts = Options {
            rank_workers: Some(workers),
            ..Default::default()
        };
        let got = run(&program, np, &model, &opts);
        assert_identical(&baseline, &got, &format!("workers={workers}"));
    }
}
