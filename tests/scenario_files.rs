//! Golden tests for the committed `scenarios/*.toml` files: each file
//! must load to *exactly* the compiled-in grid it mirrors (same grid
//! value, byte-identical scenario list), stay in canonical writer form
//! (file → grid → file is byte-identical), and — for the quick grid —
//! produce a byte-identical `BENCH_sweep.json` artifact when actually
//! executed. Rejection paths get actionable-error coverage too, because
//! scenario files are edited by hand.

use overlap_suite::sweep::{
    grid_from_toml, grid_to_toml, json, run_sweep, SweepGrid,
};

type NamedGrid = (&'static str, &'static str, fn() -> SweepGrid);

const FILES: [NamedGrid; 5] = [
    ("full", include_str!("../scenarios/full.toml"), SweepGrid::full),
    ("quick", include_str!("../scenarios/quick.toml"), SweepGrid::quick),
    ("fig1", include_str!("../scenarios/fig1.toml"), SweepGrid::fig1),
    ("scaling", include_str!("../scenarios/scaling.toml"), SweepGrid::scaling),
    (
        "interchange",
        include_str!("../scenarios/interchange.toml"),
        SweepGrid::interchange,
    ),
];

/// Every committed file loads to the compiled-in grid it mirrors, and
/// the expansion — the actual scenario list a sweep would run — is
/// identical element for element. This is what makes
/// `harness sweep --grid scenarios/full.toml` produce the same artifact
/// as the compiled-in full grid: same scenario list, deterministic
/// simulator.
#[test]
fn committed_files_expand_identically_to_the_compiled_in_grids() {
    for (name, text, compiled) in FILES {
        let from_file = grid_from_toml(text)
            .unwrap_or_else(|e| panic!("scenarios/{name}.toml failed to load: {e}"));
        let compiled = compiled();
        assert_eq!(from_file, compiled, "scenarios/{name}.toml drifted from the preset");
        let a = from_file.expand();
        let b = compiled.expand();
        assert_eq!(a, b, "scenarios/{name}.toml expands differently");
        assert!(!a.is_empty(), "scenarios/{name}.toml expands to nothing");
    }
}

/// The committed files are canonical: parse → write reproduces the file
/// bytes. (Grids therefore round-trip file → grid → file losslessly.)
#[test]
fn committed_files_are_in_canonical_writer_form() {
    for (name, text, _) in FILES {
        let grid = grid_from_toml(text).unwrap();
        assert_eq!(
            grid_to_toml(&grid),
            text,
            "scenarios/{name}.toml is not canonical — regenerate with grid_to_toml \
             (see README §Scenario files)"
        );
    }
}

/// Executing the quick grid from its scenario file yields byte-identical
/// artifact text to the compiled-in quick grid (the verify gate asserts
/// the same through the harness binary).
#[test]
fn quick_grid_from_file_produces_byte_identical_artifact() {
    let (_, text, _) = FILES[1];
    let from_file = run_sweep(&grid_from_toml(text).unwrap(), 2);
    let compiled = run_sweep(&SweepGrid::quick(), 2);
    assert_eq!(
        json::to_json_string(&from_file.normalized()),
        json::to_json_string(&compiled.normalized())
    );
}

/// The np = 256 smoke file (the verify gate's resumable-engine probe)
/// loads, stays canonical, and expands to exactly the one giant-rank
/// row it exists for. It has no compiled-in preset to mirror, so it is
/// pinned here instead of in `FILES`.
#[test]
fn smoke256_file_is_canonical_and_expands_to_one_giant_row() {
    let text = include_str!("../scenarios/smoke256.toml");
    let grid = grid_from_toml(text)
        .unwrap_or_else(|e| panic!("scenarios/smoke256.toml failed to load: {e}"));
    let specs = grid.expand();
    assert_eq!(specs.len(), 1);
    assert_eq!(specs[0].workload, "direct2d");
    assert_eq!(specs[0].np, 256);
    let canonical = grid_to_toml(&grid);
    assert!(
        text.ends_with(&canonical),
        "scenarios/smoke256.toml body is not canonical writer form"
    );
}

/// The non-uniform-model smoke file (the verify gate's congested/hetero
/// probe) loads, stays canonical, and expands to exactly the four rows
/// it exists for: the two Figure-1 workloads under one congested and
/// one heterogeneous column. Like smoke256 it has no compiled-in preset
/// to mirror, so it is pinned here instead of in `FILES`.
#[test]
fn smoke_models_file_is_canonical_and_carries_both_new_families() {
    let text = include_str!("../scenarios/smoke-models.toml");
    let grid = grid_from_toml(text)
        .unwrap_or_else(|e| panic!("scenarios/smoke-models.toml failed to load: {e}"));
    let specs = grid.expand();
    assert_eq!(specs.len(), 4);
    assert!(specs.iter().all(|s| s.np == 4 && s.tile_size.is_none()));
    let models: Vec<String> = specs.iter().map(|s| s.model.id()).collect();
    assert!(models.contains(&"congested:2:3".to_string()), "{models:?}");
    assert!(models.contains(&"hetero:half-slow".to_string()), "{models:?}");
    let canonical = grid_to_toml(&grid);
    assert!(
        text.ends_with(&canonical),
        "scenarios/smoke-models.toml body is not canonical writer form"
    );
}

/// Hand-edited files that go wrong must fail with errors that name the
/// problem and the alternatives — a scenario file typo is a user-facing
/// event, not an internal one.
#[test]
fn editing_mistakes_get_actionable_errors() {
    let (_, quick, _) = FILES[1];

    // A typo'd axis key suggests the real ones.
    let e = grid_from_toml(&quick.replace("nps =", "ranks =")).unwrap_err();
    assert!(e.contains("unknown key `ranks`") && e.contains("nps"), "{e}");

    // A typo'd workload name is caught at *expansion* resolution time by
    // the sweep (error rows), but a typo'd model dies at load time.
    let e = grid_from_toml(&quick.replace("\"mpich\"", "\"mpicc\"")).unwrap_err();
    assert!(e.contains("unknown model `mpicc`"), "{e}");

    // An unknown filter kind lists the known kinds.
    let bad_filter = format!(
        "{quick}\n[[filter]]\nkind = \"only-big\"\nnp = 64\n"
    );
    let e = grid_from_toml(&bad_filter).unwrap_err();
    assert!(
        e.contains("unknown filter kind `only-big`") && e.contains("np-cap-except"),
        "{e}"
    );

    // A filter with a misspelled key names the kind's real keys.
    let bad_key = format!(
        "{quick}\n[[filter]]\nkind = \"min-np\"\nnp_min = 4\n"
    );
    let e = grid_from_toml(&bad_key).unwrap_err();
    assert!(e.contains("unknown key `np_min`"), "{e}");

    // Scenario files carry their own schema tag.
    let e = grid_from_toml(&quick.replace("overlap-grid/v1", "overlap-grid/v9")).unwrap_err();
    assert!(e.contains("unsupported grid schema"), "{e}");
}
