//! Property tests over the sweep engine's *mechanics* (no heavy
//! simulation): grid expansion is exactly the cartesian product, the
//! JSON artifact round-trips byte-identically, and parallel execution
//! yields identical ordered results at 1, 2, and 8 threads.

use overlap_suite::sweep::{
    run_specs, summarize, ModelSpec, RunStatus, ScenarioSpec, SizeClass, SweepGrid,
    SweepRecord, SweepResult, Variant,
};
use overlap_suite::sweep::json::{from_json_string, to_json_string};
use proptest::prelude::*;

fn variant_strategy() -> impl Strategy<Value = Variant> {
    prop::sample::select(vec![Variant::Compare, Variant::Original, Variant::Prepush])
}

fn model_strategy() -> impl Strategy<Value = ModelSpec> {
    prop_oneof![
        Just(ModelSpec::Mpich),
        Just(ModelSpec::MpichGm),
        Just(ModelSpec::RdmaIdeal),
        // Dyadic factors so the id string is short; any finite f64 would
        // round-trip (shortest-repr Display), this just keeps keys tidy.
        (0u32..64).prop_map(|n| ModelSpec::MpichBeta(n as f64 / 8.0)),
    ]
}

fn spec_strategy() -> impl Strategy<Value = ScenarioSpec> {
    (
        prop::sample::select(vec!["direct2d", "indirect", "fft", "ghost"]),
        prop::sample::select(vec![SizeClass::Small, SizeClass::Medium, SizeClass::Standard]),
        1usize..64,
        model_strategy(),
        prop::option::of(1i64..4096),
        variant_strategy(),
    )
        .prop_map(|(workload, size, np, model, tile_size, variant)| ScenarioSpec {
            workload: workload.into(),
            size,
            np,
            model,
            tile_size,
            variant,
        })
}

/// Records with adversarial corners: error rows, absent measurements,
/// strings that need escaping.
fn record_strategy() -> impl Strategy<Value = SweepRecord> {
    let error_text = prop::collection::vec(
        prop::sample::select(vec!['a', 'Z', '0', ' ', '"', '\\', '\n', '\t', 'é']),
        0..10,
    )
    .prop_map(|cs| cs.into_iter().collect::<String>());
    let strategy_text = prop::sample::select(vec![
        "tiled owner sends",
        "tiled all-peers exchange (Fig. 4)",
        "indirect prepush (copy removed)",
    ])
    .prop_map(String::from);
    (
        spec_strategy(),
        prop::option::of(error_text),
        (
            prop::option::of(0u64..10_000_000_000),
            prop::option::of(0u64..10_000_000_000),
            prop::option::of(0u64..10_000_000_000),
            prop::option::of(0u64..10_000_000_000),
            // Dyadic-free but exactly representable decimals: n/1000 is
            // not always exact in binary, but Display->parse->Display is
            // still stable (shortest round-trip), which is what the
            // artifact needs.
            prop::option::of((1u32..4_000_000).prop_map(|n| n as f64 / 1000.0)),
            (0u32..100_000).prop_map(|n| n as f64 / 8.0),
            // Full-range hashes (incl. 0 and u64::MAX shapes) must survive
            // the hex detour in the artifact.
            prop::option::of(any::<u64>()),
        ),
        prop::option::of(1i64..4096),
        prop::option::of(strategy_text),
    )
        .prop_map(
            |(
                spec,
                error,
                (orig, prepush, oexp, pexp, speedup, wall_ms, input_hash),
                tile,
                strategy,
            )| {
                SweepRecord {
                    spec,
                    status: match error {
                        None => RunStatus::Ok,
                        Some(e) => RunStatus::Error(e),
                    },
                    tile_size: tile,
                    strategy,
                    orig_ns: orig,
                    prepush_ns: prepush,
                    orig_exposed_ns: oexp,
                    prepush_exposed_ns: pexp,
                    speedup,
                    input_hash,
                    wall_ms,
                }
            },
        )
}

fn result_strategy() -> impl Strategy<Value = SweepResult> {
    (
        prop::collection::vec(record_strategy(), 0..6),
        (0u32..1_000_000).prop_map(|n| n as f64 / 8.0),
    )
        .prop_map(|(records, wall_ms)| {
            let summary = summarize(&records, wall_ms);
            SweepResult {
                records,
                summary,
                timing: None,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Expansion count equals the product of the axis lengths, and the
    /// expansion itself is a pure function of the grid.
    #[test]
    fn grid_expansion_count_is_the_axis_product(
        wl in prop::collection::vec(
            prop::sample::select(vec!["a", "b", "c", "direct2d"]), 1..4),
        nps in prop::collection::vec(1usize..9, 1..4),
        models in prop::collection::vec(model_strategy(), 1..3),
        tiles in prop::collection::vec(prop::option::of(1i64..64), 1..3),
        variants in prop::collection::vec(variant_strategy(), 1..3),
    ) {
        let grid = SweepGrid::new()
            .workloads(wl.clone())
            .nps(nps.clone())
            .models(models.clone())
            .tile_sizes(tiles.clone())
            .variants(variants.clone());
        let specs = grid.expand();
        prop_assert_eq!(
            specs.len(),
            wl.len() * nps.len() * models.len() * tiles.len() * variants.len()
        );
        prop_assert_eq!(specs.len(), grid.unfiltered_len());
        prop_assert_eq!(specs, grid.expand());
    }

    /// write -> read -> write is byte-identical, and the parsed value is
    /// structurally equal — over randomized results including error rows,
    /// missing fields, and strings that need escaping.
    #[test]
    fn json_artifact_roundtrips_byte_identically(result in result_strategy()) {
        let text = to_json_string(&result);
        let back = from_json_string(&text)
            .unwrap_or_else(|e| panic!("artifact failed to parse back: {e}\n{text}"));
        prop_assert_eq!(&back, &result);
        prop_assert_eq!(to_json_string(&back), text);
    }
}

/// Thread-count invariance: the *same ordered records* come back at 1,
/// 2, and 8 workers — including error rows from an unknown workload —
/// and the normalized artifact bytes are identical.
#[test]
fn parallel_execution_is_deterministic_across_thread_counts() {
    let grid = SweepGrid::new()
        .workloads(["direct2d", "ghost-workload", "indirect"])
        .size(SizeClass::Small)
        .nps([2])
        .models([ModelSpec::MpichGm, ModelSpec::Mpich]);
    let specs = grid.expand();
    assert_eq!(specs.len(), 6);

    let strip_wall = |mut records: Vec<SweepRecord>| -> Vec<SweepRecord> {
        for r in &mut records {
            r.wall_ms = 0.0;
        }
        records
    };
    let runs: Vec<Vec<SweepRecord>> = [1usize, 2, 8, 2]
        .iter()
        .map(|&threads| strip_wall(run_specs(&specs, threads)))
        .collect();
    for (i, other) in runs.iter().enumerate().skip(1) {
        assert_eq!(
            &runs[0], other,
            "run {i} differed from the single-threaded ordering"
        );
    }
    // Error rows are present and identical wherever the sweep ran.
    assert_eq!(
        runs[0].iter().filter(|r| !r.is_ok()).count(),
        2,
        "the unknown workload contributes one error row per model"
    );
    // Artifact bytes agree too.
    let artifacts: Vec<String> = runs
        .iter()
        .map(|records| {
            let summary = summarize(records, 0.0);
            to_json_string(&SweepResult {
                records: records.clone(),
                summary,
                timing: None,
            })
        })
        .collect();
    assert!(artifacts.windows(2).all(|w| w[0] == w[1]));
}
