//! End-to-end sweep-service test: N concurrent clients against one
//! in-process server over real TCP.
//!
//! The claims under test, straight from the service's contract:
//!
//! 1. every client's `/artifact` bytes are identical to every other's
//!    AND to the committed `BENCH_sweep.json` (serving may change
//!    wall-clock, never a simulated byte);
//! 2. later jobs see a warm compile cache (`cache_hits > 0` in their
//!    status) — concurrent clients *share* the process-wide cache;
//! 3. a full queue answers 503 with a `Retry-After` hint instead of
//!    accepting unbounded work;
//! 4. the event stream is chunked NDJSON that terminates with an `end`
//!    record;
//! 5. `/diff` between two identical done jobs reports no regressions.

use overlap_suite::service::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const COMMITTED: &str = include_str!("../BENCH_sweep.json");

/// Minimal HTTP client: one request, read to close, split head/body.
fn talk(addr: SocketAddr, request: &str) -> (String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(600))).unwrap();
    s.write_all(request.as_bytes()).expect("send");
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let (head, body) = text
        .split_once("\r\n\r\n")
        .expect("response has a head/body split");
    (head.to_string(), body.to_string())
}

fn get(addr: SocketAddr, path: &str) -> (String, String) {
    talk(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn post_json(addr: SocketAddr, path: &str, body: &str) -> (String, String) {
    talk(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn status_of(head: &str) -> u16 {
    head.split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code in response line")
}

/// Grab `"field": <int>` out of a (pretty-printed) JSON body.
fn int_field(body: &str, field: &str) -> i64 {
    let needle = format!("\"{field}\": ");
    let rest = &body[body.find(&needle).unwrap_or_else(|| panic!("no {field} in {body}")) + needle.len()..];
    rest.split(|c: char| !c.is_ascii_digit() && c != '-')
        .next()
        .unwrap()
        .parse()
        .unwrap_or_else(|_| panic!("unparsable {field} in {body}"))
}

fn wait_done(addr: SocketAddr, id: i64) -> String {
    let deadline = std::time::Instant::now() + Duration::from_secs(600);
    loop {
        let (head, body) = get(addr, &format!("/jobs/{id}"));
        assert_eq!(status_of(&head), 200, "{body}");
        if body.contains("\"state\": \"done\"") {
            return body;
        }
        assert!(
            !body.contains("\"failed\"") && !body.contains("\"cancelled\""),
            "job {id} ended badly: {body}"
        );
        assert!(std::time::Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn concurrent_clients_share_one_server_and_get_identical_bytes() {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        queue_capacity: 8,
        default_threads: 2,
    })
    .expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run().expect("run"));

    // N clients race to submit the quick grid.
    const N: usize = 3;
    let submitted: Vec<i64> = {
        let mut joins = Vec::new();
        for _ in 0..N {
            joins.push(std::thread::spawn(move || {
                let (head, body) =
                    post_json(addr, "/jobs", r#"{"grid_file": "scenarios/quick.toml"}"#);
                assert_eq!(status_of(&head), 202, "{body}");
                int_field(&body, "id")
            }));
        }
        joins.into_iter().map(|j| j.join().expect("client")).collect()
    };
    assert_eq!(submitted.len(), N);

    // Each client polls its own job and fetches its artifact.
    let artifacts: Vec<String> = {
        let mut joins = Vec::new();
        for &id in &submitted {
            joins.push(std::thread::spawn(move || {
                wait_done(addr, id);
                let (head, body) = get(addr, &format!("/jobs/{id}/artifact"));
                assert_eq!(status_of(&head), 200, "{body}");
                body
            }));
        }
        joins.into_iter().map(|j| j.join().expect("client")).collect()
    };
    for a in &artifacts[1..] {
        assert_eq!(a, &artifacts[0], "artifacts differ between clients");
    }
    // ... and every one is byte-identical to the committed baseline: the
    // service changed nothing about simulated time.
    assert_eq!(
        artifacts[0], COMMITTED,
        "served artifact differs from the committed BENCH_sweep.json"
    );

    // The jobs ran FIFO in one process: whichever ran last must have hit
    // the shared compile cache (the first run filled it).
    let last = *submitted.iter().max().unwrap();
    let body = wait_done(addr, last);
    assert!(
        int_field(&body, "cache_hits") > 0,
        "last job saw a cold cache: {body}"
    );

    // The event stream is chunked NDJSON ending in an `end` record.
    let first = *submitted.iter().min().unwrap();
    let (head, events) = get(addr, &format!("/jobs/{first}/events"));
    assert_eq!(status_of(&head), 200);
    assert!(head.contains("Transfer-Encoding: chunked"), "{head}");
    for needle in [
        "\"event\": \"job-accepted\"",
        "\"event\": \"sweep-started\"",
        "\"event\": \"scenario-finished\"",
        "\"event\": \"sweep-finished\"",
        "\"event\": \"end\"",
    ] {
        assert!(events.contains(needle), "missing {needle} in {events}");
    }

    // Identical done jobs diff clean.
    let (head, body) = get(addr, &format!("/jobs/{last}/diff?baseline={first}"));
    assert_eq!(status_of(&head), 200, "{body}");
    assert!(body.contains("\"has_regressions\": false"), "{body}");

    handle.shutdown();
    server_thread.join().expect("server exits");
}

#[test]
fn full_queue_gets_backpressure_not_acceptance() {
    // Capacity 1: one job can wait while one runs. Submissions beyond
    // that must see 503 + Retry-After until the worker catches up.
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        queue_capacity: 1,
        default_threads: 1,
    })
    .expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run().expect("run"));

    // Pin the worker with a job big enough to outlast the burst below
    // (a quick sweep drains in milliseconds; this one is ~40 scenarios).
    let slow_grid = r#"schema = \"overlap-grid/v1\"\n\n[grid]\nworkloads = [\"direct\", \"direct2d\", \"indirect\", \"fft\", \"adi\"]\nsize = \"small\"\nnps = [2, 4]\nmodels = [\"mpich\", \"mpich-gm\"]\ntile_sizes = [\"auto\", 8, 16]\nvariants = [\"compare\"]\n"#;
    let (head, body) = post_json(addr, "/jobs", &format!(r#"{{"grid_toml": "{slow_grid}"}}"#));
    assert_eq!(status_of(&head), 202, "{body}");

    // Burst submissions, faster than the pinned worker can drain.
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut saw_retry_after = false;
    for _ in 0..8 {
        let (head, body) = post_json(addr, "/jobs", r#"{"grid_file": "scenarios/quick.toml"}"#);
        match status_of(&head) {
            202 => accepted += 1,
            503 => {
                rejected += 1;
                saw_retry_after = head.contains("Retry-After:");
                assert!(body.contains("retry_after_s"), "{body}");
            }
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    assert!(accepted >= 1, "at least the first submission fits");
    assert!(
        rejected >= 1,
        "a 1-slot queue must push back on an 8-submission burst"
    );
    assert!(saw_retry_after, "503 responses carry a Retry-After header");

    handle.shutdown();
    server_thread.join().expect("server exits");
}
