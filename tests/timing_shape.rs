//! Figure 1's *shape*, asserted: on communication-significant workloads,
//! pre-pushing reduces execution time under both network models, the
//! absolute times order as MPICH > MPICH-GM, and the exposed
//! communication collapses on the RDMA-capable model. Absolute magnitudes
//! are simulator artifacts; these tests pin only the orderings the paper's
//! argument depends on (DESIGN.md §2).

use compuniformer::{transform, Options, UserOracle};
use interp::run_program;
use overlap_suite::prelude::*;
use workloads::Workload;

struct Timing {
    orig_ns: u64,
    pre_ns: u64,
    orig_exposed_ns: u64,
    pre_exposed_ns: u64,
}

fn time_workload(w: &dyn Workload, np: usize, model: &clustersim::NetworkModel) -> Timing {
    let program = w.program();
    let opts = Options {
        context: w.context(),
        oracle: UserOracle::AssumeSafe,
        kselect_model: compuniformer::kselect::ModelCaps {
            overhead_ns: Some(model.overhead.as_ns() as f64),
            cpu_ns_per_byte: Some(model.cpu_send_ns_per_byte),
            wire_ns_per_byte: Some(model.gap_ns_per_byte),
            latency_ns: Some(model.latency.as_ns() as f64),
            conservative: false,
        },
        // These tests pin the timing shape of *transformed* programs —
        // including the congestion case the K-selection predictor would
        // (rightly) decline in production.
        apply_even_if_unprofitable: true,
        ..Default::default()
    };
    let out = transform(&program, &opts).expect("workload transforms");
    let base = run_program(&program, np, model).expect("original runs");
    let pre = run_program(&out.program, np, model).expect("transformed runs");
    Timing {
        orig_ns: base.report.makespan().as_ns(),
        pre_ns: pre.report.makespan().as_ns(),
        orig_exposed_ns: base.report.max_exposed_comm().as_ns(),
        pre_exposed_ns: pre.report.max_exposed_comm().as_ns(),
    }
}

fn assert_prepush_wins(w: &dyn Workload, np: usize) {
    let tcp = time_workload(w, np, &clustersim::NetworkModel::mpich());
    let gm = time_workload(w, np, &clustersim::NetworkModel::mpich_gm());

    // Pre-push strictly helps on both stacks for all-peers workloads.
    assert!(
        tcp.pre_ns < tcp.orig_ns,
        "{}: MPICH prepush {} !< orig {}",
        w.name(),
        tcp.pre_ns,
        tcp.orig_ns
    );
    assert!(
        gm.pre_ns < gm.orig_ns,
        "{}: GM prepush {} !< orig {}",
        w.name(),
        gm.pre_ns,
        gm.orig_ns
    );
    // The interconnects order as expected.
    assert!(
        gm.orig_ns < tcp.orig_ns,
        "{}: GM orig should beat MPICH orig",
        w.name()
    );
    // RDMA hides most exposed communication; TCP cannot (per-byte CPU).
    assert!(
        gm.pre_exposed_ns * 2 < gm.orig_exposed_ns,
        "{}: GM exposed comm not halved: {} vs {}",
        w.name(),
        gm.pre_exposed_ns,
        gm.orig_exposed_ns
    );
    let _ = tcp.orig_exposed_ns;
}

#[test]
fn direct2d_prepush_wins_both_models() {
    assert_prepush_wins(&workloads::direct2d::Direct2d::standard(8), 8);
}

#[test]
fn fft_prepush_wins_both_models() {
    assert_prepush_wins(&workloads::fft::FftTranspose::standard(8), 8);
}

#[test]
fn adi_prepush_wins_both_models() {
    assert_prepush_wins(&workloads::adi::AdiStencil::standard(8), 8);
}

#[test]
fn indirect_prepush_wins_on_gm() {
    let w = workloads::indirect::Indirect2d::standard(8);
    let gm = time_workload(&w, 8, &clustersim::NetworkModel::mpich_gm());
    assert!(
        gm.pre_ns < gm.orig_ns,
        "indirect: GM prepush {} !< orig {}",
        gm.pre_ns,
        gm.orig_ns
    );
}

#[test]
fn owner_strategy_shows_congestion_on_tcp() {
    // The paper §3.5: sending to "a subset of the nodes during each tile …
    // is not as efficient as network congestion may ensue". The rank-1
    // owner strategy funnels every tile into one receiver NIC; under the
    // bandwidth-poor TCP model this costs more than the original
    // alltoall's symmetric exchange. The reproduction preserves (rather
    // than hides) that effect.
    let w = workloads::direct::Direct1d::standard(8);
    let tcp = time_workload(&w, 8, &clustersim::NetworkModel::mpich());
    assert!(
        tcp.pre_ns > tcp.orig_ns,
        "expected congestion to hurt the owner strategy under MPICH: {} vs {}",
        tcp.pre_ns,
        tcp.orig_ns
    );
}

#[test]
fn gm_gains_more_than_tcp_relative() {
    // Figure 1's headline: the RDMA stack converts overlap into speedup
    // far better than the CPU-bound TCP stack. Compare *relative* gains.
    let w = workloads::direct2d::Direct2d::standard(8);
    let tcp = time_workload(&w, 8, &clustersim::NetworkModel::mpich());
    let gm = time_workload(&w, 8, &clustersim::NetworkModel::mpich_gm());
    let tcp_gain = tcp.orig_ns as f64 / tcp.pre_ns as f64;
    let gm_gain = gm.orig_ns as f64 / gm.pre_ns as f64;
    // GM's *exposed-communication* reduction must dominate TCP's.
    let tcp_exposed_cut = tcp.orig_exposed_ns as f64 / tcp.pre_exposed_ns.max(1) as f64;
    let gm_exposed_cut = gm.orig_exposed_ns as f64 / gm.pre_exposed_ns.max(1) as f64;
    assert!(
        gm_exposed_cut > tcp_exposed_cut,
        "GM exposed-comm cut {gm_exposed_cut:.2} !> TCP {tcp_exposed_cut:.2} \
         (gains: GM {gm_gain:.2}x, TCP {tcp_gain:.2}x)"
    );
}

#[test]
fn deterministic_timings() {
    let w = workloads::direct2d::Direct2d::small(4);
    let a = time_workload(&w, 4, &clustersim::NetworkModel::mpich_gm());
    let b = time_workload(&w, 4, &clustersim::NetworkModel::mpich_gm());
    assert_eq!(a.orig_ns, b.orig_ns);
    assert_eq!(a.pre_ns, b.pre_ns);
}
