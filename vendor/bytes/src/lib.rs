//! Offline shim for the `bytes` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the subset of the real `bytes` API this workspace uses: a
//! cheaply cloneable, immutable byte buffer. Swap it for the real crate by
//! pointing `[workspace.dependencies] bytes` back at crates-io.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable contiguous slice of memory (reference-counted).
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates a new empty `Bytes`.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Creates `Bytes` from a static slice without copying semantics
    /// mattering (the shim copies; the real crate borrows).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Arc::from(bytes))
    }

    /// Creates `Bytes` by copying the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes(Arc::from(s))
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes(Arc::from(b))
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.0[..] == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_cheap_clone() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert_eq!(b[1], 2);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert!(Bytes::new().is_empty());
    }
}
