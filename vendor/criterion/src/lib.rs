//! Offline shim for `criterion`.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//! Each benchmark runs `sample_size` timed iterations after one warmup and
//! prints mean wall time per iteration; there is no statistical analysis,
//! HTML report, or baseline comparison. Swap for the real crate by
//! pointing `[workspace.dependencies] criterion` back at crates-io.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    mean: Option<Duration>,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warmup / lazy-init
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = Some(start.elapsed() / self.samples as u32);
    }
}

fn run_one(id: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        mean: None,
    };
    f(&mut b);
    match b.mean {
        Some(mean) => println!("bench {id:<40} {:>12} ns/iter", mean.as_nanos()),
        None => println!("bench {id:<40} (closure never called Bencher::iter)"),
    }
}

/// Collection of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self // accepted for compatibility; the shim is iteration-count based
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id);
        run_one(&id, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().to_string(), 100, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut calls = 0u32;
        g.bench_with_input(BenchmarkId::new("add", 1), &41, |b, &x| {
            b.iter(|| {
                calls += 1;
                x + 1
            })
        });
        g.finish();
        assert!(calls >= 3);
    }
}
