//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! Provides the `Mutex` / `Condvar` subset this workspace uses with
//! parking_lot's signatures: `lock()` returns the guard directly (poisoning
//! is swallowed, matching parking_lot's no-poisoning semantics), and
//! `Condvar::wait_for` takes `&mut MutexGuard`.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// Mutual exclusion primitive (no poisoning, like parking_lot).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0.lock().unwrap_or_else(PoisonError::into_inner),
        ))
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard vacated during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard vacated during condvar wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable with parking_lot's `&mut guard` calling convention.
#[derive(Default, Debug)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard vacated during condvar wait");
        let inner = self
            .0
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard vacated during condvar wait");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_notify() {
        let m = Arc::new(Mutex::new(0u32));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            *g = 7;
            cv2.notify_all();
        });
        let mut g = m.lock();
        while *g != 7 {
            let r = cv.wait_for(&mut g, Duration::from_secs(5));
            assert!(!r.timed_out());
        }
        assert_eq!(*g, 7);
        t.join().unwrap();
    }
}
