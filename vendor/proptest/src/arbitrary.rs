//! `any::<T>()` — default strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a default generation strategy.
pub trait Arbitrary: Sized {
    fn generate(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::generate(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn generate(rng: &mut TestRng) -> bool {
        rng.gen_bool()
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn generate(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_covers_both_values() {
        let s = any::<bool>();
        let mut rng = TestRng::deterministic("any");
        let vals: Vec<bool> = (0..64).map(|_| s.sample(&mut rng)).collect();
        assert!(vals.iter().any(|&b| b) && vals.iter().any(|&b| !b));
    }
}
