//! `prop::collection` — sized `Vec` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Inclusive-lower, exclusive-upper element-count range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {r:?}");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of `element` with a length in `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let n = rng.gen_range(self.size.lo as i128, self.size.hi as i128) as usize;
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_the_size_range() {
        let s = vec(0i64..5, 2..7);
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|x| (0..5).contains(x)));
        }
    }
}
