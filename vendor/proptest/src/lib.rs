//! Offline shim for `proptest`.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of the proptest API this workspace's property
//! tests use: `Strategy` with `prop_map` / `prop_recursive` / `boxed`,
//! tuple and integer-range strategies, `prop::collection::vec`,
//! `prop::sample::select`, `prop::option::of`, a small regex-class string
//! generator, and the `proptest!` / `prop_oneof!` / `prop_assert*!`
//! macros.
//!
//! Differences from the real crate, deliberately accepted for an offline
//! test gate:
//!
//! - **no shrinking** — a failing case panics immediately instead of
//!   reporting a minimized counterexample, and the failure output only
//!   includes the sampled inputs if the assertion message interpolates
//!   them; reproduction relies on deterministic seeding instead: each
//!   test derives its RNG seed from its module path and name, so a
//!   failure replays identically on every run;
//! - the regex string strategy supports the character-class subset the
//!   tests use (`\PC`, `[...]` classes, `*`, `+`, `?`, `{m,n}`), not full
//!   regex syntax.
//!
//! Swap this shim for the real crate by pointing
//! `[workspace.dependencies] proptest` back at crates-io.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Namespace mirror of `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                // A tuple of strategies is itself a strategy, so the
                // strategy expressions are evaluated once, not per case.
                let __strategy = ($( $strat, )*);
                for __case in 0..__config.cases {
                    let _ = __case;
                    let ($( $pat, )*) =
                        $crate::strategy::Strategy::sample(&__strategy, &mut __rng);
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { assert_ne!($($args)+) };
}
