//! `prop::option` — `Option<T>` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy yielding `None` or `Some(inner)` with equal probability.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        if rng.gen_bool() {
            Some(self.inner.sample(rng))
        } else {
            None
        }
    }
}

pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let s = of(0i64..3);
        let mut rng = TestRng::deterministic("opt");
        let samples: Vec<_> = (0..100).map(|_| s.sample(&mut rng)).collect();
        assert!(samples.iter().any(Option::is_none));
        assert!(samples.iter().any(Option::is_some));
    }
}
