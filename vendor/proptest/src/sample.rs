//! `prop::sample` — choose among explicit alternatives.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy yielding a uniformly chosen clone of one of the given items.
#[derive(Debug, Clone)]
pub struct Select<T> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.items[rng.gen_index(self.items.len())].clone()
    }
}

/// Accepts a `Vec<T>` or slice of cloneable items (`&[&str]` included).
pub fn select<T: Clone, I: Into<Vec<T>>>(items: I) -> Select<T> {
    let items = items.into();
    assert!(!items.is_empty(), "select over empty collection");
    Select { items }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_from_slices_and_vecs() {
        let mut rng = TestRng::deterministic("sel");
        const NAMES: &[&str] = &["a", "b"];
        let s = select(NAMES);
        for _ in 0..20 {
            assert!(matches!(s.sample(&mut rng), "a" | "b"));
        }
        let v = select(vec![1, 2, 3]);
        for _ in 0..20 {
            assert!((1..=3).contains(&v.sample(&mut rng)));
        }
    }
}
