//! The `Strategy` trait and core combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A generator of values of type `Self::Value`.
///
/// Unlike the real proptest, a strategy here is just a sampling function —
/// there is no value tree and no shrinking.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Recursive strategies: `f` receives the strategy built so far and
    /// returns the recursive cases. At each of `depth` levels the result
    /// falls back to the base case with probability 1/2, bounding size.
    /// `_desired_size` / `_expected_branch_size` are accepted for source
    /// compatibility with the real API.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let deeper = f(current).boxed();
            current = Union::new(vec![base.clone(), deeper]).boxed();
        }
        current
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// Uniform choice among alternatives (the `prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_index(self.arms.len());
        self.arms[i].sample(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start as i128, self.end as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(*self.start() as i128, *self.end() as i128 + 1) as $t
            }
        }
    )+};
}

int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($name:ident . $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_and_unions_sample_in_bounds() {
        let mut rng = TestRng::deterministic("strategy");
        let s = (0i64..10, 5u32..6).prop_map(|(a, b)| a + b as i64);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((5..15).contains(&v));
        }
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        for _ in 0..50 {
            assert!(matches!(u.sample(&mut rng), 1 | 2));
        }
    }

    #[test]
    fn recursion_is_depth_bounded() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(c) => 1 + depth(c),
            }
        }
        let s = Just(Tree::Leaf).prop_recursive(4, 16, 1, |inner| {
            inner.prop_map(|t| Tree::Node(Box::new(t)))
        });
        let mut rng = TestRng::deterministic("rec");
        for _ in 0..200 {
            assert!(depth(&s.sample(&mut rng)) <= 4);
        }
    }
}
