//! String strategies from regex-like patterns (`s in "[ -~]{0,10}"`).
//!
//! Supports the character-class subset the workspace's fuzz tests use:
//! a pattern is a sequence of items, each a character class (`[...]`,
//! `\PC` for printable, an escape, or a literal character) followed by an
//! optional quantifier (`*`, `+`, `?`, `{n}`, `{m,n}`). Anything else
//! panics with a clear message rather than silently generating the wrong
//! distribution.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Cap for unbounded quantifiers (`*` / `+`).
const UNBOUNDED_MAX: usize = 64;

/// A handful of multi-byte scalars so `\PC` exercises real UTF-8 paths.
const NON_ASCII_POOL: &[char] = &['é', 'λ', 'Ж', '中', '🦀', '∑', 'ß', '–'];

#[derive(Debug, Clone)]
enum Class {
    /// Any printable char (`\PC`): ASCII graphic/space, plus occasional
    /// non-ASCII from the pool.
    Printable,
    /// Explicit alternatives from a `[...]` class.
    OneOf(Vec<(char, char)>),
    Literal(char),
}

#[derive(Debug, Clone)]
struct Item {
    class: Class,
    min: usize,
    max: usize, // inclusive
}

fn parse_pattern(pattern: &str) -> Vec<Item> {
    let mut chars = pattern.chars().peekable();
    let mut items = Vec::new();
    while let Some(c) = chars.next() {
        let class = match c {
            '\\' => match chars.next() {
                Some('P') => {
                    // Only the \PC ("not a control char") form is supported.
                    match chars.next() {
                        Some('C') => Class::Printable,
                        other => panic!(
                            "string strategy: unsupported \\P{{...}} form {other:?} in {pattern:?}"
                        ),
                    }
                }
                Some('n') => Class::Literal('\n'),
                Some('t') => Class::Literal('\t'),
                Some(esc @ ('\\' | '.' | '[' | ']' | '{' | '}' | '*' | '+' | '?' | '-')) => {
                    Class::Literal(esc)
                }
                other => panic!(
                    "string strategy: unsupported escape \\{other:?} in {pattern:?}"
                ),
            },
            '[' => Class::OneOf(parse_class(&mut chars, pattern)),
            '.' => Class::Printable,
            '*' | '+' | '?' | '{' => {
                panic!("string strategy: dangling quantifier in {pattern:?}")
            }
            lit => Class::Literal(lit),
        };
        let (min, max) = parse_quantifier(&mut chars, pattern);
        items.push(Item { class, min, max });
    }
    items
}

fn parse_class(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("string strategy: unterminated [ in {pattern:?}"));
        let resolved = match c {
            ']' => {
                if let Some(p) = pending.take() {
                    ranges.push((p, p));
                }
                assert!(
                    !ranges.is_empty(),
                    "string strategy: empty class in {pattern:?}"
                );
                return ranges;
            }
            '\\' => match chars.next() {
                Some('n') => '\n',
                Some('t') => '\t',
                Some(esc @ ('\\' | ']' | '[' | '-' | '^')) => esc,
                other => panic!(
                    "string strategy: unsupported class escape \\{other:?} in {pattern:?}"
                ),
            },
            '-' if pending.is_some() && chars.peek() != Some(&']') => {
                let lo = pending.take().unwrap();
                let hi = match chars.next() {
                    Some('\\') => match chars.next() {
                        Some('n') => '\n',
                        Some('t') => '\t',
                        Some(esc @ ('\\' | ']' | '[' | '-')) => esc,
                        other => panic!(
                            "string strategy: unsupported class escape \\{other:?} in {pattern:?}"
                        ),
                    },
                    Some(h) => h,
                    None => panic!("string strategy: unterminated range in {pattern:?}"),
                };
                assert!(lo <= hi, "string strategy: inverted range in {pattern:?}");
                ranges.push((lo, hi));
                continue;
            }
            lit => lit,
        };
        if let Some(p) = pending.replace(resolved) {
            ranges.push((p, p));
        }
    }
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> (usize, usize) {
    match chars.peek() {
        Some('*') => {
            chars.next();
            (0, UNBOUNDED_MAX)
        }
        Some('+') => {
            chars.next();
            (1, UNBOUNDED_MAX)
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    let (min, max) = match spec.split_once(',') {
                        Some((lo, "")) => (parse_count(lo, pattern), UNBOUNDED_MAX),
                        Some((lo, hi)) => (parse_count(lo, pattern), parse_count(hi, pattern)),
                        None => {
                            let n = parse_count(&spec, pattern);
                            (n, n)
                        }
                    };
                    assert!(min <= max, "string strategy: inverted count in {pattern:?}");
                    return (min, max);
                }
                spec.push(c);
            }
            panic!("string strategy: unterminated {{...}} in {pattern:?}")
        }
        _ => (1, 1),
    }
}

fn parse_count(s: &str, pattern: &str) -> usize {
    s.trim()
        .parse()
        .unwrap_or_else(|_| panic!("string strategy: bad count {s:?} in {pattern:?}"))
}

fn sample_class(class: &Class, rng: &mut TestRng) -> char {
    match class {
        Class::Literal(c) => *c,
        Class::Printable => {
            // Mostly ASCII printable; 1-in-8 multi-byte to stress UTF-8.
            if rng.gen_index(8) == 0 {
                NON_ASCII_POOL[rng.gen_index(NON_ASCII_POOL.len())]
            } else {
                rng.gen_range(0x20, 0x7f) as u8 as char
            }
        }
        Class::OneOf(ranges) => {
            let (lo, hi) = ranges[rng.gen_index(ranges.len())];
            char::from_u32(rng.gen_range(lo as i128, hi as i128 + 1) as u32)
                .expect("class range produced an invalid scalar")
        }
    }
}

impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let items = parse_pattern(self);
        let mut out = String::new();
        for item in &items {
            let n = rng.gen_range(item.min as i128, item.max as i128 + 1) as usize;
            for _ in 0..n {
                out.push(sample_class(&item.class, rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counted_class_respects_bounds() {
        let s = "[ -~\\n]{0,200}";
        let mut rng = TestRng::deterministic("str1");
        for _ in 0..100 {
            let v = Strategy::sample(&s, &mut rng);
            assert!(v.chars().count() <= 200);
            assert!(v.chars().all(|c| (' '..='~').contains(&c) || c == '\n'));
        }
    }

    #[test]
    fn printable_star_generates_valid_utf8_of_mixed_width() {
        let s = "\\PC*";
        let mut rng = TestRng::deterministic("str2");
        let mut saw_multibyte = false;
        for _ in 0..200 {
            let v = Strategy::sample(&s, &mut rng);
            saw_multibyte |= v.len() != v.chars().count();
        }
        assert!(saw_multibyte, "\\PC should occasionally emit non-ASCII");
    }

    #[test]
    fn literal_sequences_and_exact_counts() {
        let mut rng = TestRng::deterministic("str3");
        assert_eq!(Strategy::sample(&"abc", &mut rng), "abc");
        assert_eq!(Strategy::sample(&"a{3}", &mut rng), "aaa");
    }
}
