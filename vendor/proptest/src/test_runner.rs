//! Test configuration and the deterministic RNG behind the shim.

/// Mirror of `proptest::test_runner::Config` for the fields this
/// workspace's tests set. `max_shrink_iters` is accepted for source
/// compatibility; the shim does not shrink.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted but unused: the shim reports the raw failing case.
    pub max_shrink_iters: u32,
    /// Accepted but unused: the shim never rejects (no `prop_filter`).
    pub max_global_rejects: u32,
    /// Accepted but unused: the shim runs in-process.
    pub fork: bool,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
            max_global_rejects: 65536,
            fork: false,
        }
    }
}

/// SplitMix64: tiny, fast, and plenty uniform for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed derived from a test's module path + name (FNV-1a), so every
    /// run of a given test sees the same case sequence and failures
    /// reproduce without a persistence file.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform value in `[lo, hi)`. Modulo bias is irrelevant at test-case
    /// sampling quality.
    pub fn gen_range(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo < hi, "empty sample range {lo}..{hi}");
        let span = (hi - lo) as u128;
        lo + (self.next_u64() as u128 % span) as i128
    }

    /// Uniform index in `[0, n)`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index over empty collection");
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams_match() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = r.gen_range(-5, 7);
            assert!((-5..7).contains(&v));
        }
    }
}
